// Package monitor implements the paper's motivating use case
// (Sec. I): emergency managers watching a system degrade in real time
// need recovery predictions *during* the event, not retrospectively. A
// Tracker consumes performance observations one at a time, detects the
// disruption onset, fits resilience models once enough of the curve is
// visible, and emits recovery-time predictions that sharpen as data
// accumulates.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"math"

	"resilience/internal/core"
	"resilience/internal/optimize"
	"resilience/internal/registry"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// Phase is the tracker's view of the system's disruption lifecycle.
type Phase int

// Lifecycle phases.
const (
	// PhaseNominal means no disruption has been detected.
	PhaseNominal Phase = iota + 1
	// PhaseDegrading means performance is falling from its baseline.
	PhaseDegrading
	// PhaseRecovering means the minimum appears to have passed.
	PhaseRecovering
	// PhaseRecovered means performance has regained the baseline level.
	PhaseRecovered
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseNominal:
		return "nominal"
	case PhaseDegrading:
		return "degrading"
	case PhaseRecovering:
		return "recovering"
	case PhaseRecovered:
		return "recovered"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Config tunes the tracker.
type Config struct {
	// Baseline is the nominal performance level; observations are judged
	// against it (default: the first observation).
	Baseline float64
	// OnsetDrop is the fractional drop below baseline that declares a
	// disruption (default 0.005, i.e. −0.5%).
	OnsetDrop float64
	// RecoverySlack is how close to baseline performance must return to
	// declare recovery, as a fraction (default 0.001).
	RecoverySlack float64
	// MinFitPoints is the minimum number of post-onset observations
	// before model fitting starts (default 6).
	MinFitPoints int
	// Model is the resilience model refit on each update (default
	// competing risks).
	Model core.Model
	// Fit configures each refit; refits warm-start from the previous
	// parameters.
	Fit core.FitConfig
	// HorizonFactor bounds the numeric recovery search as a multiple of
	// the observed span (default 6).
	HorizonFactor float64
	// Fallback, when non-nil, routes every refit through the degradation
	// chain (core.FitWithFallback): optimizer panics are contained,
	// non-converging fits retry with escalating budgets and then fall back
	// to simpler families, and the outcome is annotated on the Update's
	// Degrade field. When nil, a failed refit simply leaves Update.Fit nil
	// (the pre-chain behavior), with the failure recorded in FitErr.
	Fallback *core.FallbackPolicy
	// WarmSSEFactor bounds how much a warm-polished refit's per-point SSE
	// may exceed the previous fit's before the tracker distrusts the warm
	// basin and escalates to the full multistart chain (default 4). One
	// new observation can legitimately raise the mean residual — the
	// curve bends — but a blow-up past this factor means the old optimum
	// no longer describes the data.
	WarmSSEFactor float64
	// DisableWarmPolish forces every refit through the full multistart
	// chain even when a previous fit could seed a single warm
	// Levenberg–Marquardt solve. Useful for measuring the warm path's
	// saving and as an escape hatch.
	DisableWarmPolish bool
}

func (c Config) withDefaults() Config {
	if c.OnsetDrop <= 0 {
		c.OnsetDrop = 0.005
	}
	if c.RecoverySlack <= 0 {
		c.RecoverySlack = 0.001
	}
	if c.MinFitPoints <= 0 {
		c.MinFitPoints = 6
	}
	if c.Model == nil {
		c.Model = registry.MustLookup("competing-risks").Model
	}
	if c.Fit.Starts <= 0 {
		c.Fit.Starts = 4
	}
	if c.HorizonFactor <= 0 {
		c.HorizonFactor = 6
	}
	if c.WarmSSEFactor <= 0 {
		c.WarmSSEFactor = 4
	}
	return c
}

// Update is the tracker's state after one observation.
type Update struct {
	// Time and Value echo the observation.
	Time, Value float64
	// Phase is the lifecycle phase after this observation.
	Phase Phase
	// OnsetTime is when the disruption was detected; NaN while nominal.
	OnsetTime float64
	// Fit is the latest model fit; nil until MinFitPoints post-onset
	// observations have arrived or if fitting failed this round.
	Fit *core.FitResult
	// PredictedMinimumTime and PredictedMinimumValue locate the model's
	// performance minimum; NaN without a fit.
	PredictedMinimumTime  float64
	PredictedMinimumValue float64
	// PredictedRecoveryTime is when the model expects performance to
	// regain the baseline; NaN without a fit or if the model never
	// recovers within the search horizon.
	PredictedRecoveryTime float64
	// Degrade annotates the degradation-chain outcome of this update's
	// refit (nil when no refit ran or Config.Fallback is nil).
	Degrade *core.DegradeInfo
	// FitErr records why this update's refit produced no fit ("" when the
	// refit succeeded or no refit was due).
	FitErr string
	// WarmPolished reports that this update's fit came from the cheap
	// warm-started single-LM path rather than the full multistart chain.
	WarmPolished bool
	// PolishEvals counts the objective evaluations spent by the warm
	// polish attempt, whether or not it was accepted. When WarmPolished
	// is true it equals Fit.Evals; when a failed polish escalated to the
	// full chain it is the wasted work on top of Fit.Evals, so the true
	// refit cost is always Fit.Evals plus the unaccepted PolishEvals.
	PolishEvals int
}

// Tracker consumes observations and maintains disruption state. It is
// not safe for concurrent use.
type Tracker struct {
	cfg        Config
	times      []float64
	values     []float64
	phase      Phase
	onsetIdx   int
	warmParams []float64
	// warmModel, warmSSE and warmN describe the fit that produced
	// warmParams: the family name it belongs to and its SSE over warmN
	// window points. A warm polish is attempted only when the configured
	// model matches warmModel, and its result is accepted only while the
	// per-point SSE stays within WarmSSEFactor of warmSSE/warmN.
	warmModel string
	warmSSE   float64
	warmN     int
	history   []Update
}

// ErrBadObservation is returned for non-finite or non-increasing-time
// observations.
var ErrBadObservation = errors.New("monitor: bad observation")

// NewTracker creates a tracker with the given configuration.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), phase: PhaseNominal, onsetIdx: -1}
}

// Phase returns the current lifecycle phase.
func (tr *Tracker) Phase() Phase { return tr.phase }

// History returns a copy of all updates so far. The copy is the
// caller's: mutating it cannot alias or corrupt tracker state, so
// histories can be handed across goroutines (each Update's Fit still
// shares the fitted params with the tracker's warm-start copy point —
// see refit — but the tracker never reads those back).
func (tr *Tracker) History() []Update {
	out := make([]Update, len(tr.history))
	copy(out, tr.history)
	return out
}

// HistoryLen reports how many updates have been recorded, without
// copying the history.
func (tr *Tracker) HistoryLen() int { return len(tr.history) }

// Observe ingests one (time, value) observation and returns the updated
// state.
func (tr *Tracker) Observe(t, v float64) (Update, error) {
	return tr.ObserveCtx(context.Background(), t, v)
}

// ObserveCtx is Observe under a context: a refit triggered by this
// observation honors the context's cancellation and deadline down to
// individual optimizer iterations, so closing a streaming session can
// abort an in-flight refit. A cancelled refit does not reject the
// observation — the point is already ingested and the phase machine has
// advanced — it is reported in the update's FitErr instead.
func (tr *Tracker) ObserveCtx(ctx context.Context, t, v float64) (Update, error) {
	return tr.ingest(ctx, t, v, true)
}

// Replay re-ingests a previously observed point: the observation is
// validated and appended, the phase machine advances, but no refit runs
// — crash recovery replays a session's whole history this way in
// microseconds and then restores the last persisted fit state with
// SetWarmParams, instead of re-paying every optimizer call.
func (tr *Tracker) Replay(t, v float64) (Update, error) {
	return tr.ingest(context.Background(), t, v, false)
}

// ingest is the shared observation path; refit selects whether a due
// model refit actually runs (live observation) or is skipped (replay).
func (tr *Tracker) ingest(ctx context.Context, t, v float64, refit bool) (Update, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return Update{}, fmt.Errorf("%w: non-finite (%g, %g)", ErrBadObservation, t, v)
	}
	if n := len(tr.times); n > 0 && t <= tr.times[n-1] {
		return Update{}, fmt.Errorf("%w: time %g not after %g", ErrBadObservation, t, tr.times[n-1])
	}
	tr.times = append(tr.times, t)
	tr.values = append(tr.values, v)
	if len(tr.values) == 1 && tr.cfg.Baseline == 0 {
		tr.cfg.Baseline = v
	}

	up := Update{
		Time: t, Value: v,
		OnsetTime:             math.NaN(),
		PredictedMinimumTime:  math.NaN(),
		PredictedMinimumValue: math.NaN(),
		PredictedRecoveryTime: math.NaN(),
	}

	tr.advancePhase(v)
	up.Phase = tr.phase
	if tr.onsetIdx >= 0 {
		up.OnsetTime = tr.times[tr.onsetIdx]
	}

	// Refit once enough of the disruption is visible.
	if refit && tr.onsetIdx >= 0 && tr.phase != PhaseNominal {
		if post := len(tr.times) - tr.onsetIdx; post >= tr.cfg.MinFitPoints {
			tr.refit(ctx, &up)
		}
	}

	tr.history = append(tr.history, up)
	return up, nil
}

// Observations returns copies of every ingested (time, value) pair, the
// raw material a persistence layer snapshots and replays.
func (tr *Tracker) Observations() (times, values []float64) {
	return append([]float64(nil), tr.times...), append([]float64(nil), tr.values...)
}

// WarmParams returns a copy of the parameters the next refit would
// warm-start from (nil before the first successful fit).
func (tr *Tracker) WarmParams() []float64 {
	if tr.warmParams == nil {
		return nil
	}
	return append([]float64(nil), tr.warmParams...)
}

// SetWarmParams seeds the next refit's starting point, restoring the
// warm-start state a recovered session had before a crash. The slice is
// copied; nil clears the warm start. Because it carries no fit quality
// metadata, the next refit runs the full multistart chain (warm-started)
// rather than the single-LM polish; SetWarmFit restores the polish path
// too.
func (tr *Tracker) SetWarmParams(p []float64) {
	tr.warmModel, tr.warmSSE, tr.warmN = "", 0, 0
	if p == nil {
		tr.warmParams = nil
		return
	}
	tr.warmParams = append([]float64(nil), p...)
}

// SetWarmFit restores the full warm-fit state a recovered session had
// before a crash: the parameters, the family they belong to, and the SSE
// the fit achieved over its window points. With all of it restored, the
// next refit takes exactly the warm-polish path the pre-crash session
// would have taken, so recovery is bit-identical to never having
// crashed. The params slice is copied; empty model or nil params clear
// the state.
func (tr *Tracker) SetWarmFit(model string, params []float64, sse float64, window int) {
	if model == "" || params == nil {
		tr.SetWarmParams(params)
		return
	}
	tr.warmParams = append([]float64(nil), params...)
	tr.warmModel, tr.warmSSE, tr.warmN = model, sse, window
}

// WarmFit returns the warm-fit state SetWarmFit would need to restore
// the tracker's refit behavior: the fitted family name ("" before the
// first successful fit), a copy of its parameters, its SSE, and the
// window size it was fit over.
func (tr *Tracker) WarmFit() (model string, params []float64, sse float64, window int) {
	return tr.warmModel, tr.WarmParams(), tr.warmSSE, tr.warmN
}

// advancePhase runs the threshold state machine.
func (tr *Tracker) advancePhase(v float64) {
	base := tr.cfg.Baseline
	switch tr.phase {
	case PhaseNominal:
		if v < base*(1-tr.cfg.OnsetDrop) {
			tr.phase = PhaseDegrading
			tr.onsetIdx = tr.findOnset()
		}
	case PhaseDegrading:
		if tr.pastMinimum() {
			tr.phase = PhaseRecovering
		}
		if v >= base*(1-tr.cfg.RecoverySlack) {
			tr.phase = PhaseRecovered
		}
	case PhaseRecovering:
		if v >= base*(1-tr.cfg.RecoverySlack) {
			tr.phase = PhaseRecovered
		}
	case PhaseRecovered:
		// A fresh drop restarts the cycle (the W-shape case). The
		// re-entry threshold sits OnsetDrop below the recovery
		// threshold, giving hysteresis so noise around the recovery
		// level does not flap the state machine.
		if v < base*(1-tr.cfg.RecoverySlack-tr.cfg.OnsetDrop) {
			tr.phase = PhaseDegrading
			tr.onsetIdx = tr.findOnset()
		}
	}
}

// findOnset backtracks from the current point to the most recent
// observation at or above baseline, which anchors the disruption clock.
func (tr *Tracker) findOnset() int {
	base := tr.cfg.Baseline
	for i := len(tr.values) - 1; i >= 0; i-- {
		if tr.values[i] >= base*(1-tr.cfg.RecoverySlack) {
			return i
		}
	}
	return 0
}

// pastMinimum reports whether the last few observations trend upward
// from the observed minimum.
func (tr *Tracker) pastMinimum() bool {
	n := len(tr.values)
	if n-tr.onsetIdx < 3 {
		return false
	}
	minIdx := tr.onsetIdx
	for i := tr.onsetIdx; i < n; i++ {
		if tr.values[i] < tr.values[minIdx] {
			minIdx = i
		}
	}
	// Minimum strictly inside the window plus two consecutive rises.
	return minIdx < n-2 && tr.values[n-1] > tr.values[minIdx] && tr.values[n-2] > tr.values[minIdx]
}

// refit fits the configured model to the post-onset window (re-zeroed so
// the model clock starts at the onset) and fills the update's
// predictions. The context aborts the fit mid-iteration; with a
// Fallback policy configured the fit runs the full degradation chain
// (panic containment, retries, simpler families) and the outcome lands
// on up.Degrade.
func (tr *Tracker) refit(ctx context.Context, up *Update) {
	ctx, refitSpan := telemetry.StartSpanCtx(ctx, "monitor.refit")
	defer func() {
		refitSpan.EndStatus(up.FitErr, telemetry.Int("window", len(tr.times)-tr.onsetIdx))
	}()
	onsetT := tr.times[tr.onsetIdx]
	times := make([]float64, 0, len(tr.times)-tr.onsetIdx)
	vals := make([]float64, 0, len(tr.times)-tr.onsetIdx)
	for i := tr.onsetIdx; i < len(tr.times); i++ {
		times = append(times, tr.times[i]-onsetT)
		vals = append(vals, tr.values[i])
	}
	window, err := timeseries.NewSeries(times, vals)
	if err != nil {
		up.FitErr = err.Error()
		return
	}
	// Warm polish first: with a previous optimum for this same family in
	// hand, one observation rarely moves it far, so a single warm-started
	// LM solve (analytic Jacobian, no multistart) re-converges in a
	// handful of iterations. The polish is trusted only while its
	// per-point SSE stays within WarmSSEFactor of the previous fit's —
	// otherwise the curve has genuinely changed shape and the full
	// multistart chain runs instead. A cancelled polish aborts the refit
	// without escalating: the session is closing, not the fit degrading.
	var fit *core.FitResult
	if tr.warmPolishEligible() {
		polished, pErr := core.PolishCtx(ctx, tr.cfg.Model, window, tr.warmParams, optimize.Options{})
		if pErr != nil && (errors.Is(pErr, context.Canceled) || errors.Is(pErr, context.DeadlineExceeded)) {
			up.FitErr = pErr.Error()
			return
		}
		if pErr == nil && tr.acceptWarmPolish(polished, window.Len()) {
			fit = polished
			up.WarmPolished = true
		}
		switch {
		case polished != nil:
			up.PolishEvals = polished.Evals
		default:
			var pf *core.PolishFailure
			if errors.As(pErr, &pf) {
				up.PolishEvals = pf.Evals
			}
		}
	}
	if fit == nil {
		cfg := tr.cfg.Fit
		cfg.InitialParams = tr.warmParams
		if tr.cfg.Fallback != nil {
			fit, up.Degrade, err = core.FitWithFallback(ctx, tr.cfg.Model, window, cfg, *tr.cfg.Fallback)
		} else {
			fit, err = core.FitCtx(ctx, tr.cfg.Model, window, cfg)
		}
		if err != nil {
			up.FitErr = err.Error()
			return
		}
	}
	// Warm-start the next refit from a private copy: fit.Params is shared
	// with the caller through up.Fit, and a caller mutating its result
	// must not corrupt the optimizer's starting point. Warm params only
	// transfer within one family; FitCtx falls back to the model's own
	// guess when the lengths disagree (e.g. after a fallback-family fit).
	tr.warmParams = append([]float64(nil), fit.Params...)
	tr.warmModel = fit.Model.Name()
	tr.warmSSE = fit.SSE
	tr.warmN = window.Len()
	up.Fit = fit

	span := times[len(times)-1]
	horizon := math.Max(span, 1) * tr.cfg.HorizonFactor
	if td, err := core.ModelMinimum(fit, horizon); err == nil {
		up.PredictedMinimumTime = onsetT + td
		up.PredictedMinimumValue = fit.Eval(td)
	}
	// Closed-form recovery solutions can land absurdly far out when only
	// the descent has been observed; report a prediction only when it
	// falls inside the search horizon, otherwise leave it "not yet
	// predictable" (NaN).
	if rt, err := core.RecoveryTime(fit, tr.cfg.Baseline*(1-tr.cfg.RecoverySlack), horizon); err == nil && rt <= horizon {
		up.PredictedRecoveryTime = onsetT + rt
	}
}

// warmPolishEligible reports whether the next refit may take the cheap
// single-LM path: warm polishing is enabled, and the warm state belongs
// to the configured family (a fallback-family fit or a bare
// SetWarmParams leaves warmModel disagreeing, which routes the refit
// through the full chain).
func (tr *Tracker) warmPolishEligible() bool {
	return !tr.cfg.DisableWarmPolish &&
		tr.warmParams != nil &&
		tr.warmN > 0 &&
		tr.warmModel == tr.cfg.Model.Name()
}

// acceptWarmPolish decides whether a converged polish is good enough to
// stand in for a full refit. The comparison is per-point (the window
// grew by one since the previous fit) and allows either an absolute
// near-zero residual — noiseless curves where any factor test would be
// meaningless — or staying within WarmSSEFactor of the previous fit.
func (tr *Tracker) acceptWarmPolish(fit *core.FitResult, n int) bool {
	if fit == nil || n <= 0 {
		return false
	}
	pp := fit.SSE / float64(n)
	const ppFloor = 1e-12
	return pp <= ppFloor || pp <= tr.cfg.WarmSSEFactor*(tr.warmSSE/float64(tr.warmN))
}

// ObserveSeries feeds a whole series through the tracker, returning the
// final update — a convenience for replaying recorded incidents.
func (tr *Tracker) ObserveSeries(s *timeseries.Series) (Update, error) {
	if s == nil || s.Len() == 0 {
		return Update{}, fmt.Errorf("%w: empty series", ErrBadObservation)
	}
	var last Update
	for i := 0; i < s.Len(); i++ {
		up, err := tr.Observe(s.Time(i), s.Value(i))
		if err != nil {
			return Update{}, err
		}
		last = up
	}
	return last, nil
}
