package monitor

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCountersRoundTrip(t *testing.T) {
	ResetCounters()
	t.Cleanup(ResetCounters)

	CountRequest(false)
	CountRequest(true)
	CountRequest(true)
	CountFit()
	CountFallback()
	CountCancellation()
	CountPanicRecovery()
	CountPanicRecovery()

	got := Counters()
	want := CounterSnapshot{
		Requests: 3, RequestErrors: 2, Fits: 1,
		Fallbacks: 1, Cancellations: 1, PanicRecoveries: 2,
	}
	if got != want {
		t.Errorf("Counters() = %+v, want %+v", got, want)
	}

	ResetCounters()
	if got := Counters(); got != (CounterSnapshot{}) {
		t.Errorf("after reset: %+v", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	ResetCounters()
	t.Cleanup(ResetCounters)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				CountRequest(j%2 == 0)
				CountFit()
			}
		}()
	}
	wg.Wait()
	got := Counters()
	if got.Requests != 5000 || got.RequestErrors != 2500 || got.Fits != 5000 {
		t.Errorf("racy counters: %+v", got)
	}
}

func TestSnapshotJSONKeys(t *testing.T) {
	b, err := json.Marshal(CounterSnapshot{Requests: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "request_errors", "fits", "fallbacks", "cancellations", "panic_recoveries"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, b)
		}
	}
}
