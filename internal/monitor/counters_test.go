package monitor

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCountersRoundTrip(t *testing.T) {
	ResetCounters()
	t.Cleanup(ResetCounters)

	CountRequest(false)
	CountRequest(true)
	CountRequest(true)
	CountFit()
	CountFallback()
	CountCancellation()
	CountPanicRecovery()
	CountPanicRecovery()

	got := Counters()
	want := CounterSnapshot{
		Requests: 3, RequestErrors: 2, Fits: 1,
		Fallbacks: 1, Cancellations: 1, PanicRecoveries: 2,
	}
	if got != want {
		t.Errorf("Counters() = %+v, want %+v", got, want)
	}

	ResetCounters()
	if got := Counters(); got != (CounterSnapshot{}) {
		t.Errorf("after reset: %+v", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	ResetCounters()
	t.Cleanup(ResetCounters)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				CountRequest(j%2 == 0)
				CountFit()
			}
		}()
	}
	wg.Wait()
	got := Counters()
	if got.Requests != 5000 || got.RequestErrors != 2500 || got.Fits != 5000 {
		t.Errorf("racy counters: %+v", got)
	}
}

// TestSnapshotInvariantsMidTraffic reads snapshots while writers are
// mid-flight and asserts the documented cross-counter invariants hold in
// every single read — the regression test for snapshots assembled from
// independent loads racing the writers. Run under -race.
func TestSnapshotInvariantsMidTraffic(t *testing.T) {
	ResetCounters()
	t.Cleanup(ResetCounters)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				CountRequest(i%3 == 0)
				CountFit()
				if i%4 == 0 {
					CountFallback()
				}
				if i%5 == 0 {
					CountCancellation()
				}
			}
		}(w)
	}

	for i := 0; i < 5000; i++ {
		s := Counters()
		if s.RequestErrors > s.Requests {
			t.Fatalf("snapshot %d: request_errors %d > requests %d", i, s.RequestErrors, s.Requests)
		}
		if s.Fallbacks > s.Fits {
			t.Fatalf("snapshot %d: fallbacks %d > fits %d", i, s.Fallbacks, s.Fits)
		}
		if s.Cancellations > s.Fits {
			t.Fatalf("snapshot %d: cancellations %d > fits %d", i, s.Cancellations, s.Fits)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotJSONKeys(t *testing.T) {
	b, err := json.Marshal(CounterSnapshot{Requests: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "request_errors", "fits", "fallbacks", "cancellations", "panic_recoveries"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, b)
		}
	}
}
