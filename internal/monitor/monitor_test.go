package monitor

import (
	"context"
	"errors"
	"math"
	"testing"

	"resilience/internal/core"
	"resilience/internal/faultinject"
	"resilience/internal/registry"
	"resilience/internal/timeseries"
)

// vCurve produces a clean V-shaped incident: flat at 1.0 for lead steps,
// dip to 1-depth at bottom, recovery to 1.02 by the end.
func vCurve(lead, n int, depth float64) []float64 {
	out := make([]float64, lead+n)
	for i := 0; i < lead; i++ {
		out[i] = 1
	}
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n-1)
		out[lead+i] = 1 - depth*math.Sin(math.Pi*math.Min(u/0.75, 1)) + 0.02*math.Max(0, (u-0.75)/0.25)
	}
	return out
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(Config{})
	vals := vCurve(5, 40, 0.05)
	var phases []Phase
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, up.Phase)
	}
	// Starts nominal, ends recovered, passes through degrading and
	// recovering in order.
	if phases[0] != PhaseNominal {
		t.Errorf("first phase = %v", phases[0])
	}
	if phases[len(phases)-1] != PhaseRecovered {
		t.Errorf("final phase = %v", phases[len(phases)-1])
	}
	idx := map[Phase]int{}
	for i, p := range phases {
		if _, seen := idx[p]; !seen {
			idx[p] = i
		}
	}
	if !(idx[PhaseNominal] < idx[PhaseDegrading] &&
		idx[PhaseDegrading] < idx[PhaseRecovering] &&
		idx[PhaseRecovering] < idx[PhaseRecovered]) {
		t.Errorf("phase order wrong: %v", idx)
	}
}

func TestTrackerPredictsRecovery(t *testing.T) {
	tr := NewTracker(Config{})
	vals := vCurve(3, 40, 0.04)
	// The true recovery (value back to >= baseline) happens at:
	trueRecovery := -1
	for i := 4; i < len(vals); i++ {
		if vals[i] >= 1-0.001 {
			trueRecovery = i
			break
		}
	}
	sawPrediction := false
	postMinPrediction := math.NaN()
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if up.Fit == nil || math.IsNaN(up.PredictedRecoveryTime) {
			continue
		}
		sawPrediction = true
		// Every prediction must postdate the onset.
		if up.PredictedRecoveryTime < up.OnsetTime {
			t.Errorf("step %d: recovery %g before onset %g", i, up.PredictedRecoveryTime, up.OnsetTime)
		}
		// Once the minimum has passed, the curve shape is pinned down;
		// record the first post-minimum prediction.
		if up.Phase == PhaseRecovering && math.IsNaN(postMinPrediction) {
			postMinPrediction = up.PredictedRecoveryTime
		}
	}
	if !sawPrediction {
		t.Fatal("tracker never produced a recovery prediction")
	}
	// Predictions made while still degrading are honest extrapolations
	// and may be far out; the post-minimum prediction should land near
	// the truth.
	if trueRecovery > 0 && !math.IsNaN(postMinPrediction) &&
		math.Abs(postMinPrediction-float64(trueRecovery)) > 8 {
		t.Errorf("post-minimum prediction %g vs true recovery %d too far",
			postMinPrediction, trueRecovery)
	}
}

func TestTrackerValidation(t *testing.T) {
	tr := NewTracker(Config{})
	if _, err := tr.Observe(math.NaN(), 1); !errors.Is(err, ErrBadObservation) {
		t.Errorf("NaN time: %v", err)
	}
	if _, err := tr.Observe(0, math.Inf(1)); !errors.Is(err, ErrBadObservation) {
		t.Errorf("Inf value: %v", err)
	}
	if _, err := tr.Observe(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe(0, 1); !errors.Is(err, ErrBadObservation) {
		t.Errorf("repeated time: %v", err)
	}
	if _, err := tr.Observe(-1, 1); !errors.Is(err, ErrBadObservation) {
		t.Errorf("backwards time: %v", err)
	}
}

func TestTrackerStaysNominalOnFlatData(t *testing.T) {
	tr := NewTracker(Config{})
	for i := 0; i < 30; i++ {
		up, err := tr.Observe(float64(i), 1+0.001*math.Sin(float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if up.Phase != PhaseNominal {
			t.Fatalf("step %d: phase %v on flat data", i, up.Phase)
		}
		if up.Fit != nil {
			t.Fatalf("step %d: fit produced without disruption", i)
		}
	}
}

func TestTrackerRestartsOnSecondDip(t *testing.T) {
	tr := NewTracker(Config{MinFitPoints: 100}) // disable fitting; test phases only
	feed := func(start int, vals []float64) Phase {
		var last Update
		for i, v := range vals {
			up, err := tr.Observe(float64(start+i), v)
			if err != nil {
				t.Fatal(err)
			}
			last = up
		}
		return last.Phase
	}
	// First dip and recovery.
	if p := feed(0, []float64{1, 1, 0.98, 0.96, 0.97, 0.99, 1.0}); p != PhaseRecovered {
		t.Fatalf("after first dip: %v", p)
	}
	// Second dip restarts the cycle.
	if p := feed(10, []float64{0.97}); p != PhaseDegrading {
		t.Fatalf("after second drop: %v", p)
	}
}

func TestObserveSeries(t *testing.T) {
	s, err := timeseries.FromValues(vCurve(3, 30, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(Config{})
	last, err := tr.ObserveSeries(s)
	if err != nil {
		t.Fatal(err)
	}
	if last.Phase != PhaseRecovered {
		t.Errorf("final phase = %v", last.Phase)
	}
	if len(tr.History()) != s.Len() {
		t.Errorf("history %d entries, want %d", len(tr.History()), s.Len())
	}
	if _, err := NewTracker(Config{}).ObserveSeries(nil); !errors.Is(err, ErrBadObservation) {
		t.Errorf("nil series: %v", err)
	}
}

func TestTrackerWithCustomModel(t *testing.T) {
	tr := NewTracker(Config{Model: registry.MustLookup("quadratic").Model})
	vals := vCurve(2, 30, 0.05)
	var sawFit bool
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if up.Fit != nil {
			sawFit = true
			if up.Fit.Model.Name() != "quadratic" {
				t.Fatalf("fit model = %s", up.Fit.Model.Name())
			}
		}
	}
	if !sawFit {
		t.Error("never fit the custom model")
	}
}

func TestPhaseString(t *testing.T) {
	tests := []struct {
		p    Phase
		want string
	}{
		{PhaseNominal, "nominal"},
		{PhaseDegrading, "degrading"},
		{PhaseRecovering, "recovering"},
		{PhaseRecovered, "recovered"},
		{Phase(9), "phase(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%d) = %q", tt.p, got)
		}
	}
}

func TestPredictionsSharpenWithData(t *testing.T) {
	// As more of the incident is observed, the recovery prediction should
	// approach the eventual truth (monotone improvement is not guaranteed,
	// but the final prediction must be closer than the first).
	tr := NewTracker(Config{})
	vals := vCurve(2, 36, 0.05)
	trueRecovery := -1.0
	for i := 3; i < len(vals); i++ {
		if vals[i] >= 1-0.001 {
			trueRecovery = float64(i)
			break
		}
	}
	var preds []float64
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if up.Fit != nil && !math.IsNaN(up.PredictedRecoveryTime) && up.Phase != PhaseRecovered {
			preds = append(preds, up.PredictedRecoveryTime)
		}
	}
	if len(preds) < 3 || trueRecovery < 0 {
		t.Fatalf("not enough predictions (%d) or no true recovery", len(preds))
	}
	firstErr := math.Abs(preds[0] - trueRecovery)
	lastErr := math.Abs(preds[len(preds)-1] - trueRecovery)
	if lastErr > firstErr+2 {
		t.Errorf("prediction got worse: first err %.1f, last err %.1f", firstErr, lastErr)
	}
	if lastErr > 4 {
		t.Errorf("final prediction err %.1f months, want <= 4", lastErr)
	}
}

func TestHistoryReturnsCopy(t *testing.T) {
	tr := NewTracker(Config{MinFitPoints: 100})
	for i := 0; i < 5; i++ {
		if _, err := tr.Observe(float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	h := tr.History()
	if len(h) != 5 || tr.HistoryLen() != 5 {
		t.Fatalf("history len %d / %d, want 5", len(h), tr.HistoryLen())
	}
	// Mutating the returned slice must not touch tracker state.
	h[0].Value = -99
	h = append(h[:0], Update{})
	if got := tr.History()[0].Value; got != 1 {
		t.Errorf("tracker history mutated through History(): value = %g", got)
	}
}

func TestObserveCtxCancelAbortsRefit(t *testing.T) {
	tr := NewTracker(Config{})
	vals := vCurve(2, 30, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every refit sees an already-dead context
	for i, v := range vals {
		up, err := tr.ObserveCtx(ctx, float64(i), v)
		if err != nil {
			t.Fatal(err) // cancellation must not reject the observation
		}
		if up.Fit != nil {
			t.Fatalf("step %d: fit produced under a cancelled context", i)
		}
		if up.Phase == PhaseRecovering && up.FitErr == "" {
			t.Fatalf("step %d: aborted refit left no FitErr", i)
		}
	}
	if tr.Phase() != PhaseRecovered {
		t.Errorf("phase machine stalled at %v under cancellation", tr.Phase())
	}
}

func TestTrackerFallbackAnnotatesDegrade(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	// Poison the competing-risks objective so the requested model can
	// never converge; the chain must fall back and say so.
	if err := faultinject.Arm("core.fit.objective.competing-risks", "nan"); err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(Config{
		MinFitPoints: 12, // few refits: each one walks the whole poisoned chain
		Fit:          core.FitConfig{Starts: 2},
		Fallback: &core.FallbackPolicy{
			RetryStarts: []int{1},
			Fallbacks:   registry.FallbackChain(),
		},
	})
	vals := vCurve(2, 18, 0.05)
	var sawFallback bool
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if up.Fit != nil {
			if up.Degrade == nil {
				t.Fatalf("step %d: chain fit without Degrade annotation", i)
			}
			if up.Degrade.FallbackUsed {
				sawFallback = true
				if up.Fit.Model.Name() == "competing-risks" {
					t.Fatalf("step %d: fallback flagged but requested model used", i)
				}
			}
		}
	}
	if !sawFallback {
		t.Error("poisoned objective never triggered a fallback fit")
	}
}

func TestReplayMatchesObservePhases(t *testing.T) {
	vals := vCurve(5, 40, 0.05)

	live := NewTracker(Config{})
	replay := NewTracker(Config{})
	for i, v := range vals {
		lu, err := live.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := replay.Replay(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if ru.Phase != lu.Phase {
			t.Fatalf("point %d: replay phase %v, live phase %v", i, ru.Phase, lu.Phase)
		}
		if ru.Fit != nil {
			t.Fatalf("point %d: replay ran a refit", i)
		}
		if !eqNaN(ru.OnsetTime, lu.OnsetTime) {
			t.Fatalf("point %d: replay onset %g, live onset %g", i, ru.OnsetTime, lu.OnsetTime)
		}
	}
	if replay.Phase() != live.Phase() {
		t.Errorf("final phase: replay %v, live %v", replay.Phase(), live.Phase())
	}
	if replay.HistoryLen() != live.HistoryLen() {
		t.Errorf("history length: replay %d, live %d", replay.HistoryLen(), live.HistoryLen())
	}
	rt, rv := replay.Observations()
	lt, lv := live.Observations()
	for i := range rt {
		if rt[i] != lt[i] || rv[i] != lv[i] {
			t.Fatalf("observation %d differs: (%g,%g) vs (%g,%g)", i, rt[i], rv[i], lt[i], lv[i])
		}
	}
}

func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func TestReplayValidatesLikeObserve(t *testing.T) {
	tr := NewTracker(Config{})
	if _, err := tr.Replay(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Replay(0, 1); !errors.Is(err, ErrBadObservation) {
		t.Errorf("non-increasing replay time accepted: %v", err)
	}
	if _, err := tr.Replay(1, math.NaN()); !errors.Is(err, ErrBadObservation) {
		t.Errorf("NaN replay value accepted: %v", err)
	}
}

func TestWarmParamsRoundTrip(t *testing.T) {
	tr := NewTracker(Config{})
	if got := tr.WarmParams(); got != nil {
		t.Fatalf("fresh tracker warm params = %v", got)
	}
	seed := []float64{1, 2, 3}
	tr.SetWarmParams(seed)
	seed[0] = 99 // caller's slice must not alias the tracker's copy
	got := tr.WarmParams()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("WarmParams = %v, want [1 2 3]", got)
	}
	got[1] = 98 // returned copy must not alias either
	if again := tr.WarmParams(); again[1] != 2 {
		t.Errorf("returned warm params alias tracker state: %v", again)
	}
	tr.SetWarmParams(nil)
	if got := tr.WarmParams(); got != nil {
		t.Errorf("cleared warm params = %v", got)
	}
}

// TestReplayThenObserveResumesFitting proves the recovery contract: a
// tracker rebuilt by replay + SetWarmParams continues refitting on the
// next live observation exactly where the crashed tracker left off.
func TestReplayThenObserveResumesFitting(t *testing.T) {
	vals := vCurve(5, 40, 0.05)
	cut := 30 // crash point: mid-recovery, fits already running

	live := NewTracker(Config{})
	for i := 0; i < cut; i++ {
		if _, err := live.Observe(float64(i), vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	model, warm, sse, window := live.WarmFit()
	if warm == nil {
		t.Fatal("live tracker has no warm params at the cut point; pick a later cut")
	}

	recovered := NewTracker(Config{})
	for i := 0; i < cut; i++ {
		if _, err := recovered.Replay(float64(i), vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	recovered.SetWarmFit(model, warm, sse, window)

	for i := cut; i < len(vals); i++ {
		lu, err := live.Observe(float64(i), vals[i])
		if err != nil {
			t.Fatal(err)
		}
		ru, err := recovered.Observe(float64(i), vals[i])
		if err != nil {
			t.Fatal(err)
		}
		if (ru.Fit == nil) != (lu.Fit == nil) {
			t.Fatalf("point %d: recovered fit presence %v, live %v", i, ru.Fit != nil, lu.Fit != nil)
		}
		if ru.Fit != nil {
			for j := range ru.Fit.Params {
				if ru.Fit.Params[j] != lu.Fit.Params[j] {
					t.Fatalf("point %d param %d: recovered %g, live %g",
						i, j, ru.Fit.Params[j], lu.Fit.Params[j])
				}
			}
		}
	}
}
