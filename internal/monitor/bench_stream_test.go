package monitor

import (
	"math"
	"testing"

	"resilience/internal/registry"
)

// benchCurve is a V-shaped incident with deterministic measurement
// noise: streams in the wild are not smooth, and noise is what
// separates the two refit paths — a cold multistart must re-traverse
// the whole basin every point while a warm polish starts next to the
// optimum it just left.
func benchCurve(n int) []float64 {
	vals := vCurve(3, n, 0.05)
	for i := range vals {
		vals[i] += 0.000 * math.Sin(7.3*float64(i))
	}
	return vals
}

// benchStream replays a full incident through a Tracker and reports the
// average optimizer cost of each post-seed refit as evals/op. The first
// fit after onset always runs the full multistart chain (there is
// nothing to warm-start from) and is identical on both paths, so it is
// excluded: evals/op here is the marginal cost of one more streaming
// observation.
func benchStream(b *testing.B, model string, disableWarm bool) {
	vals := benchCurve(40)
	b.ReportAllocs()
	var evals, refits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTracker(Config{
			Model:             registry.MustLookup(model).Model,
			DisableWarmPolish: disableWarm,
		})
		first := true
		for j, v := range vals {
			up, err := tr.Observe(float64(j), v)
			if err != nil {
				b.Fatal(err)
			}
			if up.Fit == nil {
				continue
			}
			if first {
				first = false
				continue
			}
			evals += float64(up.Fit.Evals)
			if !up.WarmPolished {
				// A failed warm polish that escalated still paid for the
				// attempt; charge it to this refit.
				evals += float64(up.PolishEvals)
			}
			refits++
		}
	}
	b.StopTimer()
	if refits > 0 {
		b.ReportMetric(evals/refits, "evals/op")
		b.ReportMetric(refits/float64(b.N), "refits/op")
	}
}

// BenchmarkStreamRefit measures the streaming hot path the warm-started
// polish exists for: "warm" is the default tracker (single warm LM
// solve per new point), "full" forces every refit through the complete
// multistart chain. The evals/op ratio between the two per model is the
// headline streaming speedup, summarized and gated by benchfmt in
// BENCH_compare.txt. Covers the tracker's default bathtub model and a
// four-parameter mixture, the expensive end of streaming refits.
func BenchmarkStreamRefit(b *testing.B) {
	for _, model := range []string{"competing-risks", "exp-exp"} {
		b.Run(model+"/warm", func(b *testing.B) { benchStream(b, model, false) })
		b.Run(model+"/full", func(b *testing.B) { benchStream(b, model, true) })
	}
}
