package monitor

import "sync/atomic"

// CounterSnapshot is a point-in-time copy of the process-wide resilience
// counters. The HTTP server increments them as requests flow through the
// fault-tolerant fitting pipeline and exposes this snapshot at
// GET /v1/stats, so operators can see degradation happening — fallbacks
// taken, requests cancelled, panics contained — without scraping logs.
type CounterSnapshot struct {
	// Requests counts HTTP requests served.
	Requests uint64 `json:"requests"`
	// RequestErrors counts requests answered with a 4xx/5xx envelope.
	RequestErrors uint64 `json:"request_errors"`
	// Fits counts fitting pipelines run (one per fit-family request).
	Fits uint64 `json:"fits"`
	// Fallbacks counts fits that needed the degradation chain (a retry
	// or a simpler model) to produce a result.
	Fallbacks uint64 `json:"fallbacks"`
	// Cancellations counts fits stopped by context cancellation or
	// deadline expiry.
	Cancellations uint64 `json:"cancellations"`
	// PanicRecoveries counts panics contained by the optimizer and
	// handler recover guards.
	PanicRecoveries uint64 `json:"panic_recoveries"`
}

// counters is the process-wide atomic store behind CounterSnapshot.
var counters struct {
	requests, requestErrors, fits, fallbacks, cancellations, panicRecoveries atomic.Uint64
}

// CountRequest records one served request; isError marks 4xx/5xx
// responses.
func CountRequest(isError bool) {
	counters.requests.Add(1)
	if isError {
		counters.requestErrors.Add(1)
	}
}

// CountFit records one fitting pipeline run.
func CountFit() { counters.fits.Add(1) }

// CountFallback records one degraded fit (retry or fallback model used).
func CountFallback() { counters.fallbacks.Add(1) }

// CountCancellation records one fit stopped by cancellation or deadline.
func CountCancellation() { counters.cancellations.Add(1) }

// CountPanicRecovery records one contained panic.
func CountPanicRecovery() { counters.panicRecoveries.Add(1) }

// Counters returns a snapshot of the current counter values.
func Counters() CounterSnapshot {
	return CounterSnapshot{
		Requests:        counters.requests.Load(),
		RequestErrors:   counters.requestErrors.Load(),
		Fits:            counters.fits.Load(),
		Fallbacks:       counters.fallbacks.Load(),
		Cancellations:   counters.cancellations.Load(),
		PanicRecoveries: counters.panicRecoveries.Load(),
	}
}

// ResetCounters zeroes every counter; intended for tests.
func ResetCounters() {
	counters.requests.Store(0)
	counters.requestErrors.Store(0)
	counters.fits.Store(0)
	counters.fallbacks.Store(0)
	counters.cancellations.Store(0)
	counters.panicRecoveries.Store(0)
}
