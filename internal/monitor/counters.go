package monitor

import "resilience/internal/telemetry"

// CounterSnapshot is a point-in-time copy of the process-wide resilience
// counters. The HTTP server increments them as requests flow through the
// fault-tolerant fitting pipeline and exposes this snapshot at
// GET /v1/stats, so operators can see degradation happening — fallbacks
// taken, requests cancelled, panics contained — without scraping logs.
//
// The counters are backed by the telemetry registry, so the same series
// are also available in Prometheus text format at GET /metrics (as
// resil_requests_total, resil_fallbacks_total, and so on); this JSON
// view exists for humans and pre-Prometheus tooling.
type CounterSnapshot struct {
	// Requests counts HTTP requests served.
	Requests uint64 `json:"requests"`
	// RequestErrors counts requests answered with a 4xx/5xx envelope.
	RequestErrors uint64 `json:"request_errors"`
	// Fits counts fitting pipelines run (one per fit-family request).
	Fits uint64 `json:"fits"`
	// Fallbacks counts fits that needed the degradation chain (a retry
	// or a simpler model) to produce a result.
	Fallbacks uint64 `json:"fallbacks"`
	// Cancellations counts fits stopped by context cancellation or
	// deadline expiry.
	Cancellations uint64 `json:"cancellations"`
	// PanicRecoveries counts panics contained by the optimizer and
	// handler recover guards.
	PanicRecoveries uint64 `json:"panic_recoveries"`
}

// counters are the registry-backed series behind CounterSnapshot,
// resolved once so every increment is a single atomic op.
var counters = struct {
	requests, requestErrors, fits, fallbacks, cancellations, panicRecoveries *telemetry.Counter
}{
	requests:        telemetry.GetOrCreateCounter("resil_requests_total"),
	requestErrors:   telemetry.GetOrCreateCounter("resil_request_errors_total"),
	fits:            telemetry.GetOrCreateCounter("resil_fits_total"),
	fallbacks:       telemetry.GetOrCreateCounter("resil_fallbacks_total"),
	cancellations:   telemetry.GetOrCreateCounter("resil_cancellations_total"),
	panicRecoveries: telemetry.GetOrCreateCounter("resil_panic_recoveries_total"),
}

func init() {
	telemetry.RegisterFamily("resil_requests_total", "counter", "HTTP requests served.")
	telemetry.RegisterFamily("resil_request_errors_total", "counter", "Requests answered with a 4xx/5xx envelope.")
	telemetry.RegisterFamily("resil_fits_total", "counter", "Fitting pipelines run.")
	telemetry.RegisterFamily("resil_fallbacks_total", "counter", "Fits that needed the degradation chain.")
	telemetry.RegisterFamily("resil_cancellations_total", "counter", "Fits stopped by cancellation or deadline.")
	telemetry.RegisterFamily("resil_panic_recoveries_total", "counter", "Panics contained by recover guards.")
}

// CountRequest records one served request; isError marks 4xx/5xx
// responses. The total is incremented before the error counter: paired
// with loadSnapshot reading errors before totals, every error a snapshot
// sees has its request already counted, so RequestErrors <= Requests
// holds in every snapshot.
func CountRequest(isError bool) {
	counters.requests.Inc()
	if isError {
		counters.requestErrors.Inc()
	}
}

// CountFit records one fitting pipeline run.
func CountFit() { counters.fits.Inc() }

// CountFallback records one degraded fit (retry or fallback model used).
func CountFallback() { counters.fallbacks.Inc() }

// CountCancellation records one fit stopped by cancellation or deadline.
func CountCancellation() { counters.cancellations.Inc() }

// CountPanicRecovery records one contained panic.
func CountPanicRecovery() { counters.panicRecoveries.Inc() }

// loadSnapshot reads every counter at one call point, subordinate
// counters strictly before their totals (errors before requests,
// per-outcome fit counters before fits). Because writers increment
// totals first, any subordinate event a snapshot includes has its total
// already counted, so the cross-counter invariants (RequestErrors <=
// Requests, Fallbacks <= Fits, Cancellations <= Fits) hold even
// mid-traffic.
func loadSnapshot() CounterSnapshot {
	var s CounterSnapshot
	s.Fallbacks = counters.fallbacks.Value()
	s.Cancellations = counters.cancellations.Value()
	s.PanicRecoveries = counters.panicRecoveries.Value()
	s.Fits = counters.fits.Value()
	s.RequestErrors = counters.requestErrors.Value()
	s.Requests = counters.requests.Value()
	return s
}

// Counters returns a consistent snapshot of the counter values: all six
// series are read together and re-read until two consecutive passes
// agree, so a scrape taken mid-traffic reflects one point in time rather
// than six independent loads interleaved with writers. Under sustained
// writes the loop is bounded; the final pass is returned as the best
// available snapshot (each value still individually atomic, and the
// increment ordering in CountRequest keeps RequestErrors <= Requests).
func Counters() CounterSnapshot {
	prev := loadSnapshot()
	for i := 0; i < 8; i++ {
		cur := loadSnapshot()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// ResetCounters zeroes every counter; intended for tests.
func ResetCounters() {
	counters.requests.Set(0)
	counters.requestErrors.Set(0)
	counters.fits.Set(0)
	counters.fallbacks.Set(0)
	counters.cancellations.Set(0)
	counters.panicRecoveries.Set(0)
}
