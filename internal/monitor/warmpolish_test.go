package monitor

import (
	"math"
	"testing"

	"resilience/internal/core"
)

// TestWarmPolishTakesOver verifies the streaming hot path: once the
// first full multistart fit lands, subsequent refits ride the cheap
// warm-started single-LM polish, and the per-refit evaluation cost
// collapses by an order of magnitude.
func TestWarmPolishTakesOver(t *testing.T) {
	vals := vCurve(3, 40, 0.05)
	tr := NewTracker(Config{})
	var firstFitEvals, polishes, fullFits int
	var polishEvals, fullEvals float64
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if up.Fit == nil {
			continue
		}
		if firstFitEvals == 0 {
			firstFitEvals = up.Fit.Evals
		}
		if up.WarmPolished {
			polishes++
			polishEvals += float64(up.Fit.Evals)
		} else {
			fullFits++
			fullEvals += float64(up.Fit.Evals)
		}
	}
	if polishes == 0 {
		t.Fatal("no refit took the warm-polish path")
	}
	if fullFits == 0 {
		t.Fatal("the first fit should have run the full chain")
	}
	avgPolish := polishEvals / float64(polishes)
	avgFull := fullEvals / float64(fullFits)
	if avgPolish*10 > avgFull {
		t.Errorf("warm polish averages %.0f evals vs %.0f for full fits; want ≥10× cheaper", avgPolish, avgFull)
	}
}

// TestWarmPolishDeterminism pins warm-polish refits bit-identical across
// sequential and parallel multistart configurations: the polish path is
// a single LM solve, so worker count must not leak into results, and
// the full-chain fits that seed it are deterministic by construction.
// Run under -race -cpu 1,4 this also proves the hot path is data-race
// free.
func TestWarmPolishDeterminism(t *testing.T) {
	vals := vCurve(3, 40, 0.05)
	run := func(workers int) []Update {
		tr := NewTracker(Config{Fit: core.FitConfig{Workers: workers}})
		for i, v := range vals {
			if _, err := tr.Observe(float64(i), v); err != nil {
				t.Fatal(err)
			}
		}
		return tr.History()
	}
	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("history lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if (s.Fit == nil) != (p.Fit == nil) {
			t.Fatalf("update %d: fit presence differs (workers 1: %v, workers 4: %v)", i, s.Fit != nil, p.Fit != nil)
		}
		if s.WarmPolished != p.WarmPolished {
			t.Fatalf("update %d: warm-polish path differs (workers 1: %v, workers 4: %v)", i, s.WarmPolished, p.WarmPolished)
		}
		if s.Fit == nil {
			continue
		}
		if s.Fit.SSE != p.Fit.SSE {
			t.Fatalf("update %d: SSE %g (workers 1) vs %g (workers 4)", i, s.Fit.SSE, p.Fit.SSE)
		}
		for j := range s.Fit.Params {
			if s.Fit.Params[j] != p.Fit.Params[j] {
				t.Fatalf("update %d param %d: %g (workers 1) vs %g (workers 4)",
					i, j, s.Fit.Params[j], p.Fit.Params[j])
			}
		}
	}
}

// TestWarmPolishEscalates forces the warm basin to go stale — the curve
// switches to a second, deeper dip the old optimum cannot describe —
// and checks the tracker abandons the polish for the full chain instead
// of riding a degrading fit.
func TestWarmPolishEscalates(t *testing.T) {
	// A shallow V the tracker fits, then a cliff: performance collapses
	// far below anything the fitted curve predicts.
	vals := vCurve(3, 24, 0.03)
	for i := 0; i < 16; i++ {
		u := float64(i) / 15
		vals = append(vals, 0.55+0.1*math.Sin(math.Pi*u))
	}
	tr := NewTracker(Config{})
	sawEscalation := false
	var prevFit bool
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		// An escalation shows up as a full-chain refit after at least one
		// warm polish has succeeded.
		if up.Fit != nil && !up.WarmPolished && prevFit {
			sawEscalation = true
		}
		if up.Fit != nil {
			prevFit = prevFit || up.WarmPolished
		}
		_ = i
	}
	if !sawEscalation {
		t.Error("cliff in the data never escalated a warm-polished tracker to the full chain")
	}
}

// TestWarmPolishDisabled checks the escape hatch: with
// DisableWarmPolish set, no update reports the warm path.
func TestWarmPolishDisabled(t *testing.T) {
	vals := vCurve(3, 30, 0.05)
	tr := NewTracker(Config{DisableWarmPolish: true})
	for i, v := range vals {
		up, err := tr.Observe(float64(i), v)
		if err != nil {
			t.Fatal(err)
		}
		if up.WarmPolished {
			t.Fatalf("update %d took the warm-polish path with DisableWarmPolish set", i)
		}
	}
}
