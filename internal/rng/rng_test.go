package rng

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g", v)
		}
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open = %g", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Errorf("bucket %d: %d draws, want ~%d", i, c, want)
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
		sumCube += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %g", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("third moment = %g", skew)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(2) mean = %g, want 0.5", mean)
	}
}

func TestResample(t *testing.T) {
	r := New(19)
	src := []float64{1, 2, 3}
	dst := make([]float64, 1000)
	if err := r.Resample(dst, src); err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	for _, v := range dst {
		seen[v]++
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("resample produced %g", v)
		}
	}
	for _, v := range src {
		if seen[v] == 0 {
			t.Errorf("value %g never drawn in 1000 resamples", v)
		}
	}
	if err := r.Resample(dst, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty src: %v", err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint32, raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		orig := append([]float64(nil), xs...)
		New(uint64(seed)).Shuffle(xs)
		counts := map[float64]int{}
		for _, v := range orig {
			counts[v]++
		}
		for _, v := range xs {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerturb(t *testing.T) {
	r := New(23)
	// Zero scale leaves x unchanged; small scale stays near x.
	if got := r.Perturb(5, 0); got != 5 {
		t.Errorf("Perturb scale 0 = %g", got)
	}
	for i := 0; i < 100; i++ {
		if got := r.Perturb(10, 0.01); math.Abs(got-10) > 1 {
			t.Errorf("Perturb(10, 0.01) = %g, too far", got)
		}
	}
}

func TestMul64(t *testing.T) {
	// Cross-check against big-integer arithmetic on a few cases.
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
