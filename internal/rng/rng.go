// Package rng provides a small deterministic random number generator for
// the pieces of the library that need randomness with reproducibility
// guarantees stronger than math/rand offers across Go versions: the
// synthetic dataset generator and the residual bootstrap. The core
// generator is SplitMix64, which passes BigCrush and has a trivially
// portable implementation.
package rng

import (
	"errors"
	"math"
)

// RNG is a deterministic SplitMix64 generator with Gaussian and sampling
// helpers. It is not safe for concurrent use; create one per goroutine.
type RNG struct {
	state uint64
	// spare caches the second Box–Muller variate.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with the given value. A zero seed is
// replaced with a fixed nonzero constant so the zero value is still
// usable.
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Derive mixes a base seed with a path of stream indexes into an
// independent sub-seed, so one top-level seed can reproduce an entire
// study: scenario k's generator is New(Derive(seed, k)), system j inside
// it New(Derive(seed, k, j)), and so on. Each path element passes through
// the SplitMix64 finalizer, so adjacent indexes yield statistically
// unrelated streams and Derive(s, a, b) != Derive(s, b, a).
func Derive(seed uint64, path ...uint64) uint64 {
	z := seed
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	for _, p := range path {
		z += 0x9E3779B97F4A7C15 * (p + 1)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z = z ^ (z >> 31)
	}
	return z
}

// Uint64 returns the next 64 pseudorandom bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform draw in (0, 1), never exactly 0, which
// keeps log transforms finite.
func (r *RNG) Float64Open() float64 {
	return (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0,
// mirroring math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping; bias is negligible for the
	// small n used here (bootstrap indices), but use Lemire's method for
	// exactness anyway.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		threshold := (-uint64(n)) % uint64(n)
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Normal returns a standard normal draw via Box–Muller.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	u1, u2 := r.Float64Open(), r.Float64Open()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Exponential returns a draw from Exponential(rate).
func (r *RNG) Exponential(rate float64) float64 {
	return -math.Log(r.Float64Open()) / rate
}

// ErrEmpty is returned by sampling helpers given no data.
var ErrEmpty = errors.New("rng: empty sample")

// Resample fills dst with a bootstrap resample (with replacement) of src.
// dst and src may be the same length or differ; each dst element is an
// independent uniform draw from src.
func (r *RNG) Resample(dst, src []float64) error {
	if len(src) == 0 {
		return ErrEmpty
	}
	for i := range dst {
		dst[i] = src[r.Intn(len(src))]
	}
	return nil
}

// Shuffle permutes xs in place (Fisher–Yates).
func (r *RNG) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Perturb returns x·(1 + scale·N(0,1)), the multiplicative jitter used
// for bootstrap parameter restarts.
func (r *RNG) Perturb(x, scale float64) float64 {
	return x * (1 + scale*r.Normal())
}
