// Package transport is the wire-agnostic seam between the server's
// operation layer and its transports. It owns three things every
// non-HTTP transport needs and HTTP gets for free from net/http:
//
//   - the operation vocabulary: stable op names for every request the
//     service layer answers (fit, predict, batch, session lifecycle),
//     shared by the binary protocol, the cluster forwarder, and the CLI;
//   - a compact self-describing value encoding over the JSON data model
//     (nil, bool, float64, string, array, object) so any payload that
//     can cross the HTTP transport as JSON can cross a binary transport
//     byte-for-byte payload-equivalently;
//   - CRC-framed message framing — length-prefixed, CRC32C-checked like
//     the WAL — plus the request/response envelopes that carry the op
//     name, request ID, and W3C traceparent alongside the body.
//
// The encoding is deliberately restricted to JSON's value space: a
// response is built once (the same Go struct the HTTP transport
// marshals), converted to a tree, and encoded; decoding yields the
// identical tree a JSON client would see. That restriction is what the
// golden round-trip test in internal/server pins: for every operation,
// decode(binary response) == unmarshal(HTTP response).
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Operation names. Transports carry these on the wire; the server's
// operation layer dispatches on them. Session ops carry the session ID
// in the body under "id".
const (
	OpFit          = "fit"
	OpPredict      = "predict"
	OpMetrics      = "metrics"
	OpForecast     = "forecast"
	OpIntervention = "intervention"
	OpBatch        = "batch"
	OpSimulate     = "simulate"
	OpModels       = "models"
	OpVersion      = "version"
	OpStats        = "stats"

	OpSessionCreate  = "session.create"
	OpSessionList    = "session.list"
	OpSessionGet     = "session.get"
	OpSessionDelete  = "session.delete"
	OpSessionObserve = "session.observe"
	// OpSessionSubscribe switches a binary connection into streaming
	// mode: the response is a "snapshot" event frame followed by one
	// "update" frame per observation and a terminal "closed" frame — the
	// binary twin of the HTTP SSE feed.
	OpSessionSubscribe = "session.subscribe"
)

// knownOps is the closed set of operation names. Transports use it to
// keep per-op metric labels bounded against hostile frames.
var knownOps = map[string]bool{
	OpFit: true, OpPredict: true, OpMetrics: true, OpForecast: true,
	OpIntervention: true, OpBatch: true, OpSimulate: true, OpModels: true,
	OpVersion: true, OpStats: true, OpSessionCreate: true, OpSessionList: true,
	OpSessionGet: true, OpSessionDelete: true, OpSessionObserve: true,
	OpSessionSubscribe: true,
}

// ValidOp reports whether op is part of the protocol vocabulary.
func ValidOp(op string) bool { return knownOps[op] }

// MaxFrame bounds one frame's payload; anything larger is a protocol
// violation, not a legitimate request (series are tiny; even a maximal
// batch stays well under this).
const MaxFrame = 16 << 20

// castagnoli is the CRC32C table, the same polynomial the WAL uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame layout: uint32 big-endian payload length, payload bytes, uint32
// big-endian CRC32C of the payload. A frame that fails the length bound
// or the checksum is fatal to its connection — unlike the WAL there is
// no tail to tolerate; a corrupt stream cannot be resynchronized.

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame payload %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(sum[:])
	return err
}

// ReadFrame reads one frame from r, verifying length bound and CRC.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF here is a clean end of stream
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame length %d exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: short frame payload: %w", err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("transport: short frame checksum: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("transport: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// Value-encoding tags. One byte each; lengths and counts are uint32
// big-endian; floats are IEEE 754 bits big-endian. Object keys are
// sorted so equal trees encode to equal bytes.
const (
	tagNil    = 'N'
	tagTrue   = 'T'
	tagFalse  = 'F'
	tagFloat  = 'D'
	tagString = 'S'
	tagArray  = 'A'
	tagObject = 'M'
)

// EncodeValue appends the encoding of a JSON-model value (nil, bool,
// float64, string, []any, map[string]any) to b. Any other Go type is an
// error — convert structs through ToTree first.
func EncodeValue(b *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		b.WriteByte(tagNil)
	case bool:
		if x {
			b.WriteByte(tagTrue)
		} else {
			b.WriteByte(tagFalse)
		}
	case float64:
		var buf [9]byte
		buf[0] = tagFloat
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(x))
		b.Write(buf[:])
	case string:
		var buf [5]byte
		buf[0] = tagString
		binary.BigEndian.PutUint32(buf[1:], uint32(len(x)))
		b.Write(buf[:])
		b.WriteString(x)
	case []any:
		var buf [5]byte
		buf[0] = tagArray
		binary.BigEndian.PutUint32(buf[1:], uint32(len(x)))
		b.Write(buf[:])
		for _, item := range x {
			if err := EncodeValue(b, item); err != nil {
				return err
			}
		}
	case map[string]any:
		var buf [5]byte
		buf[0] = tagObject
		binary.BigEndian.PutUint32(buf[1:], uint32(len(x)))
		b.Write(buf[:])
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := EncodeValue(b, k); err != nil {
				return err
			}
			if err := EncodeValue(b, x[k]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("transport: cannot encode %T (JSON value space only)", v)
	}
	return nil
}

// DecodeValue reads one encoded value from r.
func DecodeValue(r *bytes.Reader) (any, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("transport: truncated value: %w", err)
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagTrue:
		return true, nil
	case tagFalse:
		return false, nil
	case tagFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("transport: truncated float: %w", err)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
	case tagString:
		s, err := decodeString(r)
		if err != nil {
			return nil, err
		}
		return s, nil
	case tagArray:
		n, err := decodeCount(r)
		if err != nil {
			return nil, err
		}
		arr := make([]any, n)
		for i := range arr {
			if arr[i], err = DecodeValue(r); err != nil {
				return nil, err
			}
		}
		return arr, nil
	case tagObject:
		n, err := decodeCount(r)
		if err != nil {
			return nil, err
		}
		obj := make(map[string]any, n)
		for i := 0; i < n; i++ {
			ktag, err := r.ReadByte()
			if err != nil || ktag != tagString {
				return nil, fmt.Errorf("transport: object key is not a string (tag %q, err %v)", ktag, err)
			}
			k, err := decodeString(r)
			if err != nil {
				return nil, err
			}
			if obj[k], err = DecodeValue(r); err != nil {
				return nil, err
			}
		}
		return obj, nil
	default:
		return nil, fmt.Errorf("transport: unknown value tag %q", tag)
	}
}

func decodeCount(r *bytes.Reader) (int, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("transport: truncated count: %w", err)
	}
	n := binary.BigEndian.Uint32(buf[:])
	// A count can never describe more elements than bytes remaining; this
	// keeps a hostile frame from pre-allocating gigabytes.
	if int64(n) > int64(r.Len()) {
		return 0, fmt.Errorf("transport: count %d exceeds remaining payload %d", n, r.Len())
	}
	return int(n), nil
}

func decodeString(r *bytes.Reader) (string, error) {
	n, err := decodeCount(r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("transport: truncated string: %w", err)
	}
	return string(buf), nil
}

// Request is the binary protocol's request envelope. Body is a value in
// the JSON data model (what json.Unmarshal produces for the equivalent
// HTTP request body); nil means no body.
type Request struct {
	// Op is the operation name (Op* constants).
	Op string
	// RequestID propagates the caller's X-Request-ID equivalent so
	// forwarded requests keep one identity across nodes.
	RequestID string
	// Traceparent propagates the W3C trace context so cross-node spans
	// stitch into one trace.
	Traceparent string
	// Body is the operation input as a JSON-model tree.
	Body any
}

// Response is the binary protocol's response envelope. Status carries
// HTTP status semantics so both transports share one error vocabulary.
type Response struct {
	Status int
	Body   any
}

// Envelope keys.
const (
	keyOp          = "op"
	keyRequestID   = "request_id"
	keyTraceparent = "traceparent"
	keyBody        = "body"
	keyStatus      = "status"
)

// EncodeRequest renders a request envelope to frame-payload bytes.
func EncodeRequest(req Request) ([]byte, error) {
	env := map[string]any{keyOp: req.Op, keyBody: req.Body}
	if req.RequestID != "" {
		env[keyRequestID] = req.RequestID
	}
	if req.Traceparent != "" {
		env[keyTraceparent] = req.Traceparent
	}
	var b bytes.Buffer
	if err := EncodeValue(&b, env); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeRequest parses frame-payload bytes into a request envelope.
func DecodeRequest(payload []byte) (Request, error) {
	v, err := DecodeValue(bytes.NewReader(payload))
	if err != nil {
		return Request{}, err
	}
	env, ok := v.(map[string]any)
	if !ok {
		return Request{}, fmt.Errorf("transport: request envelope is %T, want object", v)
	}
	op, ok := env[keyOp].(string)
	if !ok || op == "" {
		return Request{}, fmt.Errorf("transport: request envelope missing op")
	}
	req := Request{Op: op, Body: env[keyBody]}
	req.RequestID, _ = env[keyRequestID].(string)
	req.Traceparent, _ = env[keyTraceparent].(string)
	return req, nil
}

// EncodeResponse renders a response envelope to frame-payload bytes.
func EncodeResponse(resp Response) ([]byte, error) {
	env := map[string]any{keyStatus: float64(resp.Status), keyBody: resp.Body}
	var b bytes.Buffer
	if err := EncodeValue(&b, env); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeResponse parses frame-payload bytes into a response envelope.
func DecodeResponse(payload []byte) (Response, error) {
	v, err := DecodeValue(bytes.NewReader(payload))
	if err != nil {
		return Response{}, err
	}
	env, ok := v.(map[string]any)
	if !ok {
		return Response{}, fmt.Errorf("transport: response envelope is %T, want object", v)
	}
	status, ok := env[keyStatus].(float64)
	if !ok {
		return Response{}, fmt.Errorf("transport: response envelope missing status")
	}
	return Response{Status: int(status), Body: env[keyBody]}, nil
}

// ToTree converts any JSON-marshalable value (the response structs the
// HTTP transport writes) into the JSON data model, so the binary
// encoding of a response is payload-equivalent to its HTTP JSON body by
// construction: both go through encoding/json's marshaling rules.
func ToTree(v any) (any, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		return nil, err
	}
	return tree, nil
}

// FromTree decodes a JSON-model tree into dst under encoding/json's
// rules — the inverse bridge for clients that want typed results.
func FromTree(tree any, dst any) error {
	raw, err := json.Marshal(tree)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}
