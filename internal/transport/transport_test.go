package transport

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	var b bytes.Buffer
	if err := EncodeValue(&b, v); err != nil {
		t.Fatalf("encode %#v: %v", v, err)
	}
	r := bytes.NewReader(b.Bytes())
	got, err := DecodeValue(r)
	if err != nil {
		t.Fatalf("decode %#v: %v", v, err)
	}
	if r.Len() != 0 {
		t.Fatalf("decode %#v left %d trailing bytes", v, r.Len())
	}
	return got
}

func TestValueRoundTrip(t *testing.T) {
	cases := []any{
		nil,
		true,
		false,
		float64(0),
		float64(-1.5),
		math.MaxFloat64,
		math.SmallestNonzeroFloat64,
		"",
		"hello",
		"unicode: héllo ☃",
		[]any{},
		[]any{nil, true, float64(3), "x"},
		map[string]any{},
		map[string]any{
			"model":  "competing-risks",
			"values": []any{float64(1), float64(0.7), float64(0.95)},
			"nested": map[string]any{"a": nil, "b": []any{false}},
		},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v => %#v", v, got)
		}
	}
}

func TestValueRoundTripNaN(t *testing.T) {
	// NaN != NaN, so check bit identity rather than DeepEqual.
	got := roundTrip(t, math.NaN())
	f, ok := got.(float64)
	if !ok || !math.IsNaN(f) {
		t.Fatalf("NaN round trip => %#v", got)
	}
}

func TestValueDeterministicMapEncoding(t *testing.T) {
	m := map[string]any{"b": float64(2), "a": float64(1), "c": "x"}
	var b1, b2 bytes.Buffer
	for i := 0; i < 8; i++ {
		b1.Reset()
		if err := EncodeValue(&b1, m); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			b2.Write(b1.Bytes())
		} else if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("map encoding not deterministic")
		}
	}
}

func TestEncodeValueRejectsNonJSONTypes(t *testing.T) {
	var b bytes.Buffer
	if err := EncodeValue(&b, 42); err == nil {
		t.Error("int should be rejected (JSON value space is float64)")
	}
	if err := EncodeValue(&b, struct{ X int }{1}); err == nil {
		t.Error("struct should be rejected; use ToTree first")
	}
}

func TestDecodeValueHostileCounts(t *testing.T) {
	// An object claiming 4 billion entries with no bytes behind it must
	// fail fast, not allocate.
	payload := []byte{tagArray, 0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeValue(bytes.NewReader(payload)); err == nil {
		t.Error("oversized array count accepted")
	}
	payload = []byte{tagString, 0x00, 0x10, 0x00, 0x00, 'x'}
	if _, err := DecodeValue(bytes.NewReader(payload)); err == nil {
		t.Error("oversized string length accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, []byte("x"), bytes.Repeat([]byte("abc123"), 1000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame round trip: got %q want %q", got, p)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("important payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[6] ^= 0x40 // flip a payload bit
	_, err := ReadFrame(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted frame not detected: %v", err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized frame length accepted")
	}
}

func TestRequestEnvelopeRoundTrip(t *testing.T) {
	req := Request{
		Op:          OpFit,
		RequestID:   "req-123",
		Traceparent: "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		Body: map[string]any{
			"model":  "cdf-weibull",
			"values": []any{float64(1), float64(0.6), float64(0.9)},
		},
	}
	payload, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("request round trip:\n got %#v\nwant %#v", got, req)
	}

	// Optional fields stay absent.
	bare := Request{Op: OpModels}
	payload, err = EncodeRequest(bare)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != "" || got.Traceparent != "" || got.Body != nil {
		t.Fatalf("bare request grew fields: %#v", got)
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	var b bytes.Buffer
	if err := EncodeValue(&b, "not an object"); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(b.Bytes()); err == nil {
		t.Error("non-object envelope accepted")
	}
	b.Reset()
	if err := EncodeValue(&b, map[string]any{"body": nil}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(b.Bytes()); err == nil {
		t.Error("envelope without op accepted")
	}
}

func TestResponseEnvelopeRoundTrip(t *testing.T) {
	resp := Response{Status: 422, Body: map[string]any{"error": "fit failed"}}
	payload, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("response round trip:\n got %#v\nwant %#v", got, resp)
	}
}

func TestToTreeMatchesJSONModel(t *testing.T) {
	type inner struct {
		Name  string    `json:"name"`
		Vals  []float64 `json:"vals"`
		Skip  string    `json:"skip,omitempty"`
		Count int       `json:"count"`
	}
	tree, err := ToTree(inner{Name: "x", Vals: []float64{1, 2}, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":  "x",
		"vals":  []any{float64(1), float64(2)},
		"count": float64(3),
	}
	if !reflect.DeepEqual(tree, want) {
		t.Fatalf("ToTree:\n got %#v\nwant %#v", tree, want)
	}
	var back inner
	if err := FromTree(tree, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "x" || back.Count != 3 || len(back.Vals) != 2 {
		t.Fatalf("FromTree: %#v", back)
	}
}
