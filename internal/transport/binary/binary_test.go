package binary

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"resilience/internal/transport"
)

// fakeHandler echoes enough structure to exercise the protocol without
// dragging in the real operation layer.
type fakeHandler struct {
	execs atomic.Int64
}

func (h *fakeHandler) Exec(ctx context.Context, op string, body any) (int, any) {
	h.execs.Add(1)
	switch op {
	case "fit":
		return 200, map[string]any{"op": op, "echo": body}
	case "boom":
		panic("handler exploded")
	case "slow":
		select {
		case <-ctx.Done():
			return 499, map[string]any{"error": "canceled"}
		case <-time.After(5 * time.Second):
			return 200, nil
		}
	default:
		return 404, map[string]any{"error": "unknown op"}
	}
}

func (h *fakeHandler) Stream(ctx context.Context, op string, body any, send func(string, any) error) (int, any) {
	if m, ok := body.(map[string]any); ok && m["id"] == "missing" {
		return 404, map[string]any{"error": "session not found"}
	}
	for i := 0; i < 3; i++ {
		if err := send("update", map[string]any{"seq": float64(i)}); err != nil {
			return 200, nil
		}
	}
	send("closed", nil)
	return 200, nil
}

func startServer(t *testing.T, h Handler) (*Server, string) {
	t.Helper()
	srv := NewServer(h, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func TestUnaryRoundTrip(t *testing.T) {
	_, addr := startServer(t, &fakeHandler{})
	c := NewClient(addr)
	defer c.Close()

	body := map[string]any{"model": "cdf-weibull", "values": []any{float64(1), float64(0.5)}}
	status, resp, err := c.Do(context.Background(), "fit", "req-1", "", body)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	want := map[string]any{"op": "fit", "echo": body}
	if !reflect.DeepEqual(resp, want) {
		t.Fatalf("resp:\n got %#v\nwant %#v", resp, want)
	}

	// Errors come back as statuses, not transport failures.
	status, _, err = c.Do(context.Background(), "nope", "", "", nil)
	if err != nil || status != 404 {
		t.Fatalf("unknown op: status=%d err=%v", status, err)
	}
}

func TestPanicIsolated(t *testing.T) {
	_, addr := startServer(t, &fakeHandler{})
	c := NewClient(addr)
	defer c.Close()

	status, resp, err := c.Do(context.Background(), "boom", "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != 500 {
		t.Fatalf("status = %d", status)
	}
	m, _ := resp.(map[string]any)
	if m["error"] == "" || m["request_id"] == "" {
		t.Fatalf("panic envelope: %#v", resp)
	}

	// The connection (and server) survive the panic.
	if status, _, err = c.Do(context.Background(), "fit", "", "", nil); err != nil || status != 200 {
		t.Fatalf("post-panic request: status=%d err=%v", status, err)
	}
}

func TestContextDeadline(t *testing.T) {
	_, addr := startServer(t, &fakeHandler{})
	c := NewClient(addr)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "slow", "", "", nil)
	if err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestPooledConnRetryAfterServerRestart(t *testing.T) {
	h := &fakeHandler{}
	srv := NewServer(h, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	c := NewClient(addr)
	defer c.Close()
	if status, _, err := c.Do(context.Background(), "fit", "", "", nil); err != nil || status != 200 {
		t.Fatalf("first request: status=%d err=%v", status, err)
	}

	// Kill the server; the client now holds a dead pooled connection.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	srv.Shutdown(ctx)
	cancel()

	// Restart on the same address.
	srv2 := NewServer(h, nil)
	var ln2 net.Listener
	for i := 0; i < 50; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	go srv2.Serve(ln2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()

	// The stale pooled connection must be retried transparently.
	if status, _, err := c.Do(context.Background(), "fit", "", "", nil); err != nil || status != 200 {
		t.Fatalf("post-restart request: status=%d err=%v", status, err)
	}
}

func TestSubscribeStream(t *testing.T) {
	_, addr := startServer(t, &fakeHandler{})
	c := NewClient(addr)
	defer c.Close()

	var events []string
	status, _, err := c.Subscribe(context.Background(), transport.OpSessionSubscribe, "", "",
		map[string]any{"id": "s-1"},
		func(event string, data any) error {
			events = append(events, event)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	want := []string{"update", "update", "update", "closed"}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v", events)
	}

	// Rejection path: a normal error response, no events.
	status, body, err := c.Subscribe(context.Background(), transport.OpSessionSubscribe, "", "",
		map[string]any{"id": "missing"},
		func(string, any) error { return fmt.Errorf("should not be called") })
	if err != nil || status != 404 {
		t.Fatalf("rejected subscribe: status=%d body=%v err=%v", status, body, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	h := &fakeHandler{}
	_, addr := startServer(t, h)
	c := NewClient(addr)
	defer c.Close()

	const n = 20
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			status, _, err := c.Do(context.Background(), "fit", "", "", map[string]any{"n": float64(1)})
			if err == nil && status != 200 {
				err = fmt.Errorf("status %d", status)
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := h.execs.Load(); got != n {
		t.Fatalf("execs = %d, want %d", got, n)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	_, addr := startServer(t, &fakeHandler{})
	c := NewClient(addr)
	defer c.Close()
	// One request in flight survives a concurrent graceful shutdown.
	status, _, err := c.Do(context.Background(), "fit", "", "", nil)
	if err != nil || status != 200 {
		t.Fatalf("status=%d err=%v", status, err)
	}
}
