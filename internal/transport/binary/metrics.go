package binary

import "resilience/internal/telemetry"

func init() {
	telemetry.RegisterFamily("resil_transport_requests_total", "counter",
		"Non-HTTP transport requests by transport, op, and status.")
	telemetry.RegisterFamily("resil_transport_request_duration_seconds", "histogram",
		"Non-HTTP transport request latency by transport and op.")
}

// transportMetrics pairs the counter and latency histogram for one
// (transport, op, status) cell. The HTTP listener keeps its own
// resil_http_* families; these cover every other transport.
type transportMetrics struct {
	requests *telemetry.Counter
	latency  *telemetry.Histogram
}

func (m transportMetrics) observe(seconds float64, traceID string) {
	m.requests.Inc()
	m.latency.ObserveWithExemplar(seconds, traceID)
}

// transportMetricsFor resolves the handles for a transport/op/status
// cell. All three label dimensions are bounded: transport names are
// static, ops collapse to "other" outside the protocol vocabulary, and
// statuses come from the handlers' finite set.
func transportMetricsFor(transportName, op string, status int) transportMetrics {
	return transportMetrics{
		requests: telemetry.GetOrCreateCounter("resil_transport_requests_total{" +
			telemetry.Labels("transport", transportName, "op", op, "status", itoa(status)) + "}"),
		latency: telemetry.GetOrCreateHistogram("resil_transport_request_duration_seconds{"+
			telemetry.Labels("transport", transportName, "op", op)+"}", telemetry.DurationBuckets()),
	}
}
