package binary

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"resilience/internal/transport"
)

// Client is a pooled binary-protocol client for one server address.
// Connections are checked out for the duration of one request/response
// exchange and returned to the idle pool on success; a connection that
// errors is discarded. Safe for concurrent use.
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// maxIdleConns bounds the pool; beyond this, returned connections are
// closed instead of kept.
const maxIdleConns = 8

// defaultDialTimeout bounds dials when the caller's context carries no
// deadline.
const defaultDialTimeout = 5 * time.Second

// NewClient returns a client for the binary listener at addr
// (host:port). No connection is made until the first call.
func NewClient(addr string) *Client {
	return &Client{addr: addr, dialTimeout: defaultDialTimeout}
}

// Addr returns the server address this client talks to.
func (c *Client) Addr() string { return c.addr }

// Close closes all idle connections and marks the client unusable.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
}

// checkout returns an idle connection (reused=true) or dials a new one.
func (c *Client) checkout(ctx context.Context) (conn net.Conn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, fmt.Errorf("binary client: closed")
	}
	if n := len(c.idle); n > 0 {
		conn = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	return c.dial(ctx)
}

func (c *Client) dial(ctx context.Context) (net.Conn, bool, error) {
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, false, fmt.Errorf("binary client: dial %s: %w", c.addr, err)
	}
	return conn, false, nil
}

// checkin returns a healthy connection to the pool.
func (c *Client) checkin(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= maxIdleConns {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// Do performs one unary operation. body must be JSON-marshalable (it is
// bridged through transport.ToTree); the returned body is a JSON-model
// tree — decode with transport.FromTree for typed access. The returned
// status carries HTTP semantics; a non-2xx status is NOT an error — the
// error return covers transport failures only.
//
// A request that fails on a pooled (previously idle) connection before
// any response bytes arrive is retried once on a fresh connection, so a
// server restart between calls does not surface as a spurious error.
func (c *Client) Do(ctx context.Context, op, requestID, traceparent string, body any) (int, any, error) {
	tree, err := transport.ToTree(body)
	if err != nil {
		return 0, nil, fmt.Errorf("binary client: encode body: %w", err)
	}
	payload, err := transport.EncodeRequest(transport.Request{
		Op: op, RequestID: requestID, Traceparent: traceparent, Body: tree,
	})
	if err != nil {
		return 0, nil, err
	}

	for attempt := 0; ; attempt++ {
		conn, reused, err := c.checkout(ctx)
		if err != nil {
			return 0, nil, err
		}
		resp, err := c.exchange(ctx, conn, payload)
		if err == nil {
			c.checkin(conn)
			return resp.Status, resp.Body, nil
		}
		conn.Close()
		// Only a stale pooled connection earns a retry: a fresh dial
		// that failed reflects the server's actual state.
		if reused && attempt == 0 && ctx.Err() == nil {
			continue
		}
		return 0, nil, err
	}
}

// exchange writes one request frame and reads one response frame,
// honoring the context deadline via the connection deadline.
func (c *Client) exchange(ctx context.Context, conn net.Conn, payload []byte) (transport.Response, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Time{}
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return transport.Response{}, err
	}
	if err := transport.WriteFrame(conn, payload); err != nil {
		return transport.Response{}, fmt.Errorf("binary client: write: %w", err)
	}
	raw, err := transport.ReadFrame(conn)
	if err != nil {
		return transport.Response{}, fmt.Errorf("binary client: read: %w", err)
	}
	resp, err := transport.DecodeResponse(raw)
	if err != nil {
		return transport.Response{}, err
	}
	return resp, nil
}

// Subscribe opens a dedicated connection for a streaming op
// (session.subscribe) and invokes onEvent for each event frame until
// the feed ends (terminal "closed" event), onEvent returns an error,
// ctx is cancelled, or the connection drops. If the server answers with
// a normal error response instead of a stream, Subscribe returns its
// status and body with a nil error and never calls onEvent.
func (c *Client) Subscribe(ctx context.Context, op, requestID, traceparent string, body any, onEvent func(event string, data any) error) (int, any, error) {
	tree, err := transport.ToTree(body)
	if err != nil {
		return 0, nil, fmt.Errorf("binary client: encode body: %w", err)
	}
	payload, err := transport.EncodeRequest(transport.Request{
		Op: op, RequestID: requestID, Traceparent: traceparent, Body: tree,
	})
	if err != nil {
		return 0, nil, err
	}
	conn, _, err := c.dial(ctx)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()

	// A long-lived subscription has no deadline; unblock the reader when
	// the context ends by closing the connection.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := transport.WriteFrame(conn, payload); err != nil {
		return 0, nil, fmt.Errorf("binary client: write: %w", err)
	}
	for {
		raw, err := transport.ReadFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, ctx.Err()
			}
			return 0, nil, fmt.Errorf("binary client: read: %w", err)
		}
		resp, err := transport.DecodeResponse(raw)
		if err != nil {
			return 0, nil, err
		}
		env, ok := resp.Body.(map[string]any)
		if !ok || resp.Status >= 400 {
			// Not a stream: the server rejected the subscription.
			return resp.Status, resp.Body, nil
		}
		event, _ := env["event"].(string)
		if event == "" {
			return resp.Status, resp.Body, nil
		}
		if err := onEvent(event, env["data"]); err != nil {
			return resp.Status, nil, err
		}
		if event == "closed" {
			return resp.Status, nil, nil
		}
	}
}
