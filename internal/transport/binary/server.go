// Package binary serves and consumes the compact binary protocol
// defined in internal/transport: CRC32C-framed request/response
// envelopes over a plain TCP listener, answering the same operations as
// the HTTP API. It exists for two callers — the `resil -transport
// binary` CLI paths, and the cluster layer, which forwards non-owned
// session requests to their owner over this protocol because a peer hop
// should not pay HTTP framing on top of its own.
//
// One connection carries one request at a time (clients pool
// connections instead of pipelining). A session.subscribe request
// switches the connection into streaming mode: the server emits one
// response frame per event ("snapshot", then "update"s, then a terminal
// "closed") and afterwards returns the connection to request/response
// mode.
package binary

import (
	"context"
	"log/slog"
	"net"
	"sync"
	"time"

	"resilience/internal/monitor"
	"resilience/internal/telemetry"
	"resilience/internal/transport"
)

// Handler executes one protocol operation. It is implemented by the
// server package's operation layer (App.BinaryHandler), keeping this
// package free of any knowledge of request shapes.
type Handler interface {
	// Exec runs a unary op. body is the request body as a JSON-model
	// tree (nil when absent); the returned body is likewise a tree (or a
	// JSON-marshalable value — the server converts via transport.ToTree
	// before encoding). status carries HTTP status semantics.
	Exec(ctx context.Context, op string, body any) (status int, respBody any)
	// Stream runs a streaming op (session.subscribe), delivering events
	// through send until the feed ends or send fails. The returned
	// status/body are only written as a normal response when the stream
	// could not start (status >= 400); otherwise the events themselves,
	// ending with "closed", are the response.
	Stream(ctx context.Context, op string, body any, send func(event string, data any) error) (status int, respBody any)
}

// Server accepts binary-protocol connections and dispatches frames to a
// Handler with the same observability envelope the HTTP middleware
// provides: request IDs, trace adoption/minting, per-op spans, trace
// store records, and resil_transport_* metrics.
type Server struct {
	handler Handler
	logger  *slog.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	inflight sync.WaitGroup // one unit per request being handled
	baseCtx  context.Context
	cancel   context.CancelFunc
}

// NewServer returns a server dispatching to h. logger may be nil.
func NewServer(h Handler, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handler: h,
		logger:  logger,
		conns:   make(map[net.Conn]struct{}),
		baseCtx: ctx,
		cancel:  cancel,
	}
}

// Serve accepts connections on ln until the listener is closed. It
// always returns a non-nil error; after Shutdown the error is
// net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops accepting, waits for in-flight requests to finish (or
// ctx to expire), then closes every remaining connection. Streaming
// subscriptions are expected to have ended already via session shutdown;
// any still open are cancelled.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.cancel() // unblock any straggling streams
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := transport.ReadFrame(conn)
		if err != nil {
			// Clean EOF and reset are the normal ends of a pooled
			// connection; anything else (corrupt frame, oversize) is
			// fatal to the connection either way.
			return
		}
		if !s.serveFrame(conn, payload) {
			return
		}
	}
}

// serveFrame handles one request frame; false means the connection must
// close (encode failure or mid-stream write failure — the peer's view
// of the stream is no longer trustworthy).
func (s *Server) serveFrame(conn net.Conn, payload []byte) (keepAlive bool) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	start := time.Now()
	req, err := transport.DecodeRequest(payload)
	if err != nil {
		// Envelope didn't parse: answer once, then drop the connection.
		s.writeResponse(conn, transport.Response{
			Status: 400,
			Body:   map[string]any{"error": "malformed request envelope: " + err.Error()},
		})
		return false
	}
	opLabel := req.Op
	if !transport.ValidOp(opLabel) {
		opLabel = "other"
	}

	// Mirror the HTTP middleware's identity/tracing envelope.
	trace := &telemetry.Trace{ID: sanitizeRequestID(req.RequestID)}
	parentSpanID := ""
	if tid, psid, ok := telemetry.ParseTraceparent(req.Traceparent); ok {
		trace.TraceID = tid
		parentSpanID = psid
	} else {
		trace.TraceID = telemetry.NewTraceID()
	}
	ctx := telemetry.WithTrace(s.baseCtx, trace)
	if parentSpanID != "" {
		ctx = telemetry.WithParentSpanID(ctx, parentSpanID)
	}
	ctx, root := telemetry.StartSpanCtx(ctx, "binary."+opLabel)

	status := 500
	var body any
	streamed := false
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				monitor.CountPanicRecovery()
				status = 500
				body = map[string]any{
					"error":      "internal error: request handler panicked",
					"request_id": trace.ID,
				}
			}
		}()
		if req.Op == transport.OpSessionSubscribe {
			streamed = true
			status, body = s.handler.Stream(ctx, req.Op, req.Body, func(event string, data any) error {
				return s.writeEvent(conn, event, data)
			})
		} else {
			status, body = s.handler.Exec(ctx, req.Op, req.Body)
		}
	}()

	spanStatus := ""
	if status >= 500 {
		spanStatus = "BIN " + itoa(status)
	}
	elapsed := root.EndStatus(spanStatus, telemetry.Int("status", status))
	monitor.CountRequest(status >= 400)
	transportMetricsFor("binary", opLabel, status).observe(elapsed.Seconds(), trace.TraceID)
	telemetry.DefaultTraceStore.Record(&telemetry.TraceRecord{
		TraceID:   trace.TraceID,
		RequestID: trace.ID,
		Route:     "bin:" + opLabel,
		Method:    "BIN",
		Status:    status,
		Error:     status >= 500,
		Start:     start,
		Duration:  elapsed,
		Spans:     trace.Spans(),
	})
	s.logger.Info("binary request",
		"op", req.Op,
		"status", status,
		"duration_ms", float64(elapsed.Microseconds())/1000,
		"request_id", trace.ID,
		"trace_id", trace.TraceID,
	)

	if streamed && status < 400 {
		// The events were the response; the terminal "closed" frame has
		// already been sent by the handler's feed.
		return true
	}
	tree, err := transport.ToTree(body)
	if err != nil {
		status = 500
		tree = map[string]any{"error": "response encoding failed", "request_id": trace.ID}
	}
	return s.writeResponse(conn, transport.Response{Status: status, Body: tree})
}

func (s *Server) writeResponse(conn net.Conn, resp transport.Response) bool {
	payload, err := transport.EncodeResponse(resp)
	if err != nil {
		return false
	}
	return transport.WriteFrame(conn, payload) == nil
}

// writeEvent sends one streaming event frame: a 200 response whose body
// is {"event": name, "data": tree}.
func (s *Server) writeEvent(conn net.Conn, event string, data any) error {
	tree, err := transport.ToTree(data)
	if err != nil {
		return err
	}
	payload, err := transport.EncodeResponse(transport.Response{
		Status: 200,
		Body:   map[string]any{"event": event, "data": tree},
	})
	if err != nil {
		return err
	}
	return transport.WriteFrame(conn, payload)
}

// sanitizeRequestID mirrors the HTTP middleware's policy: honor a sane
// caller-supplied ID (so forwarded requests keep one identity across
// nodes), mint a fresh one otherwise.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return telemetry.NewRequestID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return telemetry.NewRequestID()
		}
	}
	return id
}

func itoa(v int) string {
	if v <= 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
