package experiment

import (
	"resilience/internal/core"
	"resilience/internal/registry"
)

// The experiment pipelines resolve the paper's models through the
// registry — the single definition site — rather than constructing
// core literals. The registry guarantees these names exist, so the
// lookups cannot fail.
var (
	quadModel = registry.MustLookup("quadratic").Model
	crModel   = registry.MustLookup("competing-risks").Model
	expBModel = registry.MustLookup("exp-bathtub").Model
)

// standardMixtures is the registry's typed view of the paper's four
// mixture combinations, in Table III column order.
func standardMixtures() []*core.MixtureModel { return registry.Mixtures() }
