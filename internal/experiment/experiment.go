// Package experiment reproduces every table and figure in the paper's
// evaluation (Sec. V). Each experiment is registered under the paper's
// artifact ID ("table1" … "table4", "fig1" … "fig6"), runs the full
// pipeline on the reconstructed recession datasets, and renders output
// matching the paper's layout. bench_test.go and cmd/resil are thin
// wrappers over this package.
package experiment

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"resilience/internal/report"
)

// Result is a completed experiment: rendered text plus the underlying
// typed rows for programmatic assertions.
type Result struct {
	// ID is the artifact identifier, e.g. "table1" or "fig3".
	ID string
	// Title describes the artifact as in the paper.
	Title string
	// Text is the rendered table or ASCII figure.
	Text string
	// Rows holds experiment-specific typed data (see each experiment).
	Rows any
	// Plot holds the figure's plot object for figure experiments, usable
	// for SVG export; nil for tables.
	Plot *report.Plot
}

// Runner executes one experiment.
type Runner func() (*Result, error)

// ErrUnknown is returned for unregistered experiment IDs.
var ErrUnknown = errors.New("experiment: unknown experiment id")

// _titles maps artifact IDs to their paper descriptions. It is consulted
// by Title without touching the runner registry, which keeps package
// initialization acyclic (runners themselves call Title).
var _titles = map[string]string{
	"fig1":          "Figure 1: conceptual resilience curve",
	"fig2":          "Figure 2: payroll change in U.S. recessions from peak employment",
	"table1":        "Table I: validation of prediction using two bathtub functions",
	"fig3":          "Figure 3: quadratic model fit to 2001-05 U.S. recession data",
	"fig4":          "Figure 4: competing risks model fit to 1990-93 U.S. recession data",
	"table2":        "Table II: interval-based resilience metrics using bathtub functions (1990-93)",
	"table3":        "Table III: validation of prediction using mixture distributions",
	"fig5":          "Figure 5: Weibull-Exponential model fit to 1990-93 U.S. recession data",
	"fig6":          "Figure 6: Exp-Weibull and Wei-Wei model fits to 1981-83 U.S. recession data",
	"table4":        "Table IV: interval-based resilience metrics using mixture distributions (1990-93)",
	"ext-composite":  "Extension: changepoint composites on the W-shaped 1980 recession",
	"ext-selection":  "Extension: automated model selection on 1990-93",
	"ext-montecarlo": "Extension: Monte Carlo coverage and model-selection study over coupled scenarios",
}

// runners maps artifact IDs to their implementations. Lazily resolved by
// Run so that package-level initialization stays acyclic.
func runners() map[string]Runner {
	return map[string]Runner{
		"fig1":          Figure1,
		"fig2":          Figure2,
		"table1":        Table1,
		"fig3":          Figure3,
		"fig4":          Figure4,
		"table2":        Table2,
		"table3":        Table3,
		"fig5":          Figure5,
		"fig6":          Figure6,
		"table4":        Table4,
		"ext-composite":  ExtensionComposite,
		"ext-selection":  func() (*Result, error) { return ExtensionSelection("1990-93") },
		"ext-montecarlo": ExtensionMonteCarlo,
	}
}

// IDs returns the registered experiment IDs sorted with tables and
// figures in paper order.
func IDs() []string {
	ids := make([]string, 0, len(_titles))
	for id := range _titles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

// orderKey sorts artifacts in paper-presentation order.
func orderKey(id string) string {
	order := map[string]string{
		"fig1": "00", "fig2": "01", "table1": "02", "fig3": "03",
		"fig4": "04", "table2": "05", "table3": "06", "fig5": "07",
		"fig6": "08", "table4": "09",
		"ext-composite": "10", "ext-selection": "11", "ext-montecarlo": "12",
	}
	if k, ok := order[id]; ok {
		return k
	}
	return "99" + id
}

// Title returns the registered title for an ID.
func Title(id string) (string, error) {
	t, ok := _titles[strings.ToLower(id)]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	return t, nil
}

// Run executes the experiment registered under id.
func Run(id string) (*Result, error) {
	r, ok := runners()[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknown, id, IDs())
	}
	return r()
}
