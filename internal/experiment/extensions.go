package experiment

import (
	"fmt"
	"strings"

	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/registry"
	"resilience/internal/report"
)

// ExtensionRow scores one model on the W-shaped 1980 dataset in the
// future-work experiment.
type ExtensionRow struct {
	Model string
	GoF   core.GoF
	EC    float64
}

// ExtensionComposite runs the paper's future-work direction: on the
// W-shaped 1980 dataset — which Sec. V shows neither proposed model
// class can fit — compare both single-dip bathtub models against
// two-phase changepoint composites. The composite should restore the
// adjusted R² to the level the single-dip models only reach on V/U
// data.
func ExtensionComposite() (*Result, error) {
	rec, err := dataset.ByName("1980")
	if err != nil {
		return nil, err
	}
	// The changepoint must sit between the two documented dips
	// (recovery of dip 1 by month ~13, dip 2 onset month ~16).
	compositeCR, err := core.NewComposite(crModel, crModel, 8, 22)
	if err != nil {
		return nil, err
	}
	compositeQuad, err := core.NewComposite(quadModel, quadModel, 8, 22)
	if err != nil {
		return nil, err
	}
	models := []core.Model{
		quadModel,
		crModel,
		expBModel,
		compositeQuad,
		compositeCR,
	}
	var rows []ExtensionRow
	tbl := report.NewTable("Model", "SSE", "PMSE", "r2adj", "EC")
	for _, m := range models {
		v, err := core.Validate(m, rec.Series, core.ValidateConfig{})
		if err != nil {
			return nil, fmt.Errorf("extension %s: %w", m.Name(), err)
		}
		rows = append(rows, ExtensionRow{Model: m.Name(), GoF: v.GoF, EC: v.EC})
		tbl.MustAddRow(m.Name(), report.F(v.GoF.SSE), report.F(v.GoF.PMSE),
			report.F(v.GoF.R2Adj), report.Pct(v.EC))
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("\nSingle-dip models cannot express the 1980 double dip (low r2adj);\n")
	b.WriteString("the changepoint composites recover V/U-grade fits, implementing the\n")
	b.WriteString("extension the paper's conclusions call for.\n")
	return &Result{
		ID:    "ext-composite",
		Title: "Extension: changepoint composites on the W-shaped 1980 recession",
		Text:  b.String(),
		Rows:  rows,
	}, nil
}

// SelectionRow is one candidate's scores in the model-selection
// extension experiment.
type SelectionRow struct {
	Model string
	PMSE  float64
	AIC   float64
	BIC   float64
	CV    float64
}

// ExtensionSelection demonstrates automated model selection: all paper
// models plus the extensions are ranked on a chosen dataset by
// rolling-origin cross-validated prediction error.
func ExtensionSelection(datasetName string) (*Result, error) {
	rec, err := dataset.ByName(datasetName)
	if err != nil {
		return nil, err
	}
	// The registry's registration order is exactly the paper menu: both
	// bathtub hazards, the exponential-bathtub extension, then the four
	// standard mixtures.
	sel, err := core.SelectModel(registry.Models(), rec.Series, core.SelectConfig{
		Criterion:  core.ByPMSE,
		AlwaysCV:   true,
		CVMinTrain: rec.Series.Len() * 3 / 4,
	})
	if err != nil {
		return nil, err
	}
	var rows []SelectionRow
	tbl := report.NewTable("Rank", "Model", "PMSE", "AIC", "BIC", "CV(1-step)")
	for i, s := range sel.Scores {
		rows = append(rows, SelectionRow{
			Model: s.Model.Name(),
			PMSE:  s.Validation.GoF.PMSE,
			AIC:   s.Validation.GoF.AIC,
			BIC:   s.Validation.GoF.BIC,
			CV:    s.CV,
		})
		tbl.MustAddRow(fmt.Sprintf("%d", i+1), s.Model.Name(),
			report.F(s.Validation.GoF.PMSE),
			fmt.Sprintf("%.2f", s.Validation.GoF.AIC),
			fmt.Sprintf("%.2f", s.Validation.GoF.BIC),
			report.F(s.CV))
	}
	return &Result{
		ID:    "ext-selection",
		Title: "Extension: automated model selection on " + datasetName,
		Text:  tbl.String(),
		Rows:  rows,
	}, nil
}
