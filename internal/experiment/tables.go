package experiment

import (
	"fmt"
	"math"

	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/report"
)

// Table1Row is one dataset × measure block of Table I, extended with a
// Diebold–Mariano test of equal predictive accuracy between the two
// models on the held-out months (negative statistic = quadratic wins).
type Table1Row struct {
	Recession string
	N         int
	Quadratic core.GoF
	QuadEC    float64
	Competing core.GoF
	CompEC    float64
	DMStat    float64
	DMPValue  float64
}

// Table1 reproduces Table I: both bathtub models validated on all seven
// recessions with SSE, PMSE, adjusted R², and empirical coverage at 95%.
func Table1() (*Result, error) {
	recs, err := dataset.Recessions()
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	tbl := report.NewTable("U.S. Recession", "n", "Measure", "Quadratic", "Competing Risks")
	for _, rec := range recs {
		quad, err := core.Validate(quadModel, rec.Series, core.ValidateConfig{})
		if err != nil {
			return nil, fmt.Errorf("table1 %s quadratic: %w", rec.Name, err)
		}
		comp, err := core.Validate(crModel, rec.Series, core.ValidateConfig{})
		if err != nil {
			return nil, fmt.Errorf("table1 %s competing: %w", rec.Name, err)
		}
		row := Table1Row{
			Recession: rec.Name, N: rec.Months,
			Quadratic: quad.GoF, QuadEC: quad.EC,
			Competing: comp.GoF, CompEC: comp.EC,
			DMStat: math.NaN(), DMPValue: math.NaN(),
		}
		if dm, err := core.ComparePredictive(quad.Fit, comp.Fit, quad.Test); err == nil {
			row.DMStat, row.DMPValue = dm.Statistic, dm.PValue
		}
		rows = append(rows, row)
		n := fmt.Sprintf("%d", rec.Months)
		tbl.MustAddRow(rec.Name, n, "SSE", report.F(quad.GoF.SSE), report.F(comp.GoF.SSE))
		tbl.MustAddRow("", "", "PMSE", report.F(quad.GoF.PMSE), report.F(comp.GoF.PMSE))
		tbl.MustAddRow("", "", "r2adj", report.F(quad.GoF.R2Adj), report.F(comp.GoF.R2Adj))
		tbl.MustAddRow("", "", "EC", report.Pct(quad.EC), report.Pct(comp.EC))
		dmCell := "n/a"
		if !math.IsNaN(row.DMStat) {
			dmCell = fmt.Sprintf("stat %+.2f, p %.3f", row.DMStat, row.DMPValue)
		}
		tbl.MustAddRow("", "", "DM test", dmCell, "")
	}
	return &Result{
		ID:    "table1",
		Title: mustTitle("table1"),
		Text:  tbl.String(),
		Rows:  rows,
	}, nil
}

func mustTitle(id string) string {
	t, err := Title(id)
	if err != nil {
		panic(err) // registry entries are static
	}
	return t
}

// Table2Row is one metric row of Table II: actual value, per-model
// predictions, and relative errors.
type Table2Row struct {
	Metric    core.MetricKind
	Actual    float64
	Quadratic core.MetricComparison
	Competing core.MetricComparison
}

// Table2 reproduces Table II: the eight interval-based metrics predicted
// by both bathtub models on the 1990-93 recession, with relative errors
// (Eq. 22) and α = 0.5 for the weighted metric.
func Table2() (*Result, error) {
	rec, err := dataset.ByName("1990-93")
	if err != nil {
		return nil, err
	}
	quad, err := core.Validate(quadModel, rec.Series, core.ValidateConfig{})
	if err != nil {
		return nil, fmt.Errorf("table2 quadratic: %w", err)
	}
	comp, err := core.Validate(crModel, rec.Series, core.ValidateConfig{})
	if err != nil {
		return nil, fmt.Errorf("table2 competing: %w", err)
	}
	quadRows, err := core.CompareMetrics(quad, rec.Series, core.MetricsConfig{})
	if err != nil {
		return nil, fmt.Errorf("table2 quadratic metrics: %w", err)
	}
	compRows, err := core.CompareMetrics(comp, rec.Series, core.MetricsConfig{})
	if err != nil {
		return nil, fmt.Errorf("table2 competing metrics: %w", err)
	}

	var rows []Table2Row
	tbl := report.NewTable("Metric", "Data", "Quadratic", "Competing Risks")
	for i, qr := range quadRows {
		cr := compRows[i]
		rows = append(rows, Table2Row{Metric: qr.Kind, Actual: qr.Actual, Quadratic: qr, Competing: cr})
		tbl.MustAddRow(qr.Kind.String(), "Actual", report.F(qr.Actual), report.F(cr.Actual))
		tbl.MustAddRow("", "Predicted", report.F(qr.Predicted), report.F(cr.Predicted))
		tbl.MustAddRow("", "delta", report.F(qr.RelErr), report.F(cr.RelErr))
	}
	return &Result{ID: "table2", Title: mustTitle("table2"), Text: tbl.String(), Rows: rows}, nil
}

// Table3Row is one dataset × mixture-model block of Table III.
type Table3Row struct {
	Recession string
	Model     string
	GoF       core.GoF
	EC        float64
}

// Table3 reproduces Table III: the four mixture combinations (Exp-Exp,
// Wei-Exp, Exp-Wei, Wei-Wei) with a₂(t) = β·ln t validated on all seven
// recessions.
func Table3() (*Result, error) {
	return mixtureValidation("table3", standardMixtures())
}

// mixtureValidation runs the Table III pipeline for an arbitrary mixture
// set; the trend-ablation bench reuses it with non-default transitions.
func mixtureValidation(id string, mixtures []*core.MixtureModel) (*Result, error) {
	recs, err := dataset.Recessions()
	if err != nil {
		return nil, err
	}
	headers := []string{"U.S. Recession", "Measure"}
	for _, m := range mixtures {
		headers = append(headers, m.Name())
	}
	tbl := report.NewTable(headers...)
	var rows []Table3Row
	for _, rec := range recs {
		vals := make([]*core.Validation, len(mixtures))
		for i, m := range mixtures {
			v, err := core.Validate(m, rec.Series, core.ValidateConfig{})
			if err != nil {
				return nil, fmt.Errorf("%s %s %s: %w", id, rec.Name, m.Name(), err)
			}
			vals[i] = v
			rows = append(rows, Table3Row{Recession: rec.Name, Model: m.Name(), GoF: v.GoF, EC: v.EC})
		}
		addRow := func(measure string, pick func(*core.Validation) string) {
			cells := []string{"", measure}
			if measure == "SSE" {
				cells[0] = rec.Name
			}
			for _, v := range vals {
				cells = append(cells, pick(v))
			}
			tbl.MustAddRow(cells...)
		}
		addRow("SSE", func(v *core.Validation) string { return report.F(v.GoF.SSE) })
		addRow("PMSE", func(v *core.Validation) string { return report.F(v.GoF.PMSE) })
		addRow("r2adj", func(v *core.Validation) string { return report.F(v.GoF.R2Adj) })
		addRow("EC", func(v *core.Validation) string { return report.Pct(v.EC) })
	}
	title := id
	if t, err := Title(id); err == nil {
		title = t
	}
	return &Result{ID: id, Title: title, Text: tbl.String(), Rows: rows}, nil
}

// Table4Row is one metric row of Table IV across the four mixtures.
type Table4Row struct {
	Metric core.MetricKind
	Actual float64
	// ByModel maps mixture name to its comparison.
	ByModel map[string]core.MetricComparison
}

// Table4 reproduces Table IV: the eight interval-based metrics predicted
// by all four mixture combinations on the 1990-93 recession.
func Table4() (*Result, error) {
	rec, err := dataset.ByName("1990-93")
	if err != nil {
		return nil, err
	}
	mixtures := standardMixtures()
	headers := []string{"Metric", "Data"}
	comparisons := make([][]core.MetricComparison, len(mixtures))
	for i, m := range mixtures {
		headers = append(headers, m.Name())
		v, err := core.Validate(m, rec.Series, core.ValidateConfig{})
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", m.Name(), err)
		}
		comparisons[i], err = core.CompareMetrics(v, rec.Series, core.MetricsConfig{})
		if err != nil {
			return nil, fmt.Errorf("table4 %s metrics: %w", m.Name(), err)
		}
	}
	tbl := report.NewTable(headers...)
	var rows []Table4Row
	for rowIdx, kind := range core.MetricKinds() {
		row := Table4Row{Metric: kind, Actual: comparisons[0][rowIdx].Actual,
			ByModel: make(map[string]core.MetricComparison, len(mixtures))}
		addRow := func(label string, pick func(core.MetricComparison) float64) {
			cells := []string{"", label}
			if label == "Actual" {
				cells[0] = kind.String()
			}
			for i := range mixtures {
				cells = append(cells, report.F(pick(comparisons[i][rowIdx])))
			}
			tbl.MustAddRow(cells...)
		}
		for i, m := range mixtures {
			row.ByModel[m.Name()] = comparisons[i][rowIdx]
		}
		addRow("Actual", func(c core.MetricComparison) float64 { return c.Actual })
		addRow("Predicted", func(c core.MetricComparison) float64 { return c.Predicted })
		addRow("delta", func(c core.MetricComparison) float64 { return c.RelErr })
		rows = append(rows, row)
	}
	return &Result{ID: "table4", Title: mustTitle("table4"), Text: tbl.String(), Rows: rows}, nil
}

// MixtureValidationWithTrend runs the Table III pipeline with an
// alternative a₂ transition; used by the trend ablation bench.
func MixtureValidationWithTrend(trend core.Trend) (*Result, error) {
	mixtures, err := core.MixtureWithTrend(trend)
	if err != nil {
		return nil, err
	}
	return mixtureValidation("table3+"+trend.Name(), mixtures)
}
