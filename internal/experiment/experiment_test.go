package experiment

import (
	"errors"
	"strings"
	"testing"

	"resilience/internal/core"
	"resilience/internal/dataset"
)

func TestRegistryCompleteness(t *testing.T) {
	ids := IDs()
	want := []string{"fig1", "fig2", "table1", "fig3", "fig4", "table2",
		"table3", "fig5", "fig6", "table4", "ext-composite", "ext-selection",
		"ext-montecarlo"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		if title, err := Title(id); err != nil || title == "" {
			t.Errorf("Title(%q) = %q, %v", id, title, err)
		}
	}
	if _, err := Title("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown title: %v", err)
	}
	if _, err := Run("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown run: %v", err)
	}
}

func TestRunIsCaseInsensitive(t *testing.T) {
	r, err := Run("FIG1")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig1" {
		t.Errorf("ID = %q", r.ID)
	}
}

// table1Rows runs Table1 once for the assertions below.
func table1Rows(t *testing.T) []Table1Row {
	t.Helper()
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]Table1Row)
	if !ok || len(rows) != 7 {
		t.Fatalf("Table1 rows: %T (%d)", res.Rows, len(rows))
	}
	if res.Text == "" || !strings.Contains(res.Text, "Competing Risks") {
		t.Error("Table1 text missing")
	}
	return rows
}

func TestTable1PaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	rows := table1Rows(t)
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Recession] = r
	}

	// Claim 1: on V/U-shaped datasets both bathtub models achieve a solid
	// adjusted R².
	for _, name := range []string{"1974-76", "1981-83", "1990-93", "2001-05", "2007-09"} {
		r := byName[name]
		if r.Quadratic.R2Adj < 0.8 || r.Competing.R2Adj < 0.8 {
			t.Errorf("%s: r2adj quad %.3f / comp %.3f, want both > 0.8",
				name, r.Quadratic.R2Adj, r.Competing.R2Adj)
		}
	}

	// Claim 2: the W-shaped 1980 and L-shaped 2020-21 data defeat both
	// models ("substantially poorer", low or negative r2adj).
	for _, name := range []string{"1980", "2020-21"} {
		r := byName[name]
		if r.Quadratic.R2Adj > 0.6 || r.Competing.R2Adj > 0.6 {
			t.Errorf("%s: r2adj quad %.3f / comp %.3f, want both < 0.6 (model should fail)",
				name, r.Quadratic.R2Adj, r.Competing.R2Adj)
		}
	}

	// Claim 3: the competing-risks model shows greater flexibility,
	// winning PMSE on most datasets.
	wins := 0
	for _, r := range rows {
		if r.Competing.PMSE < r.Quadratic.PMSE {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("competing risks wins PMSE on %d/7 datasets, want majority", wins)
	}

	// Empirical coverage should be broadly near the 95% target.
	for _, r := range rows {
		if r.QuadEC < 0.75 || r.CompEC < 0.75 {
			t.Errorf("%s: EC quad %.2f / comp %.2f implausibly low", r.Recession, r.QuadEC, r.CompEC)
		}
	}
}

func TestTable3PaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]Table3Row)
	if !ok || len(rows) != 28 {
		t.Fatalf("Table3 rows: %T (%d)", res.Rows, len(rows))
	}
	type key struct{ rec, model string }
	byKey := map[key]Table3Row{}
	for _, r := range rows {
		byKey[key{r.Recession, r.Model}] = r
	}

	// Claim 1: Exp-Exp is the weakest combination — on most datasets it
	// has the worst (or tied-worst) SSE of the four.
	models := []string{"exp-exp", "weibull-exp", "exp-weibull", "weibull-weibull"}
	worstCount := 0
	for _, rec := range []string{"1974-76", "1980", "1981-83", "1990-93", "2001-05", "2007-09", "2020-21"} {
		worst := true
		ee := byKey[key{rec, "exp-exp"}].GoF.SSE
		for _, m := range models[1:] {
			if byKey[key{rec, m}].GoF.SSE > ee*1.001 {
				worst = false
				break
			}
		}
		if worst {
			worstCount++
		}
	}
	if worstCount < 4 {
		t.Errorf("exp-exp worst on only %d/7 datasets, want majority", worstCount)
	}

	// Claim 2: at least one richer mixture reaches r2adj > 0.9 on each
	// V/U-shaped dataset.
	for _, rec := range []string{"1974-76", "1981-83", "1990-93", "2001-05", "2007-09"} {
		best := -10.0
		for _, m := range models[1:] {
			if r2 := byKey[key{rec, m}].GoF.R2Adj; r2 > best {
				best = r2
			}
		}
		if best < 0.9 {
			t.Errorf("%s: best non-exp-exp r2adj %.3f, want > 0.9", rec, best)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]Table2Row)
	if !ok || len(rows) != 8 {
		t.Fatalf("Table2 rows: %T (%d)", res.Rows, len(rows))
	}
	// The headline area metrics must be predicted accurately by both
	// bathtub models on the well-behaved 1990-93 data (paper: δ < 0.01 on
	// all but the normalization-sensitive metric).
	for _, r := range rows {
		switch r.Metric {
		case core.PerformancePreserved, core.AvgPreserved, core.NormalizedAvgPreserved:
			if r.Quadratic.RelErr > 0.05 || r.Competing.RelErr > 0.05 {
				t.Errorf("%v: rel err quad %.4f / comp %.4f, want < 0.05",
					r.Metric, r.Quadratic.RelErr, r.Competing.RelErr)
			}
		}
	}
	if !strings.Contains(res.Text, "performance preserved") {
		t.Error("Table2 text missing metric names")
	}
}

func TestTable4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	res, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]Table4Row)
	if !ok || len(rows) != 8 {
		t.Fatalf("Table4 rows: %T (%d)", res.Rows, len(rows))
	}
	for _, r := range rows {
		if len(r.ByModel) != 4 {
			t.Errorf("%v: %d models", r.Metric, len(r.ByModel))
		}
	}
}

func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Text == "" {
				t.Fatal("empty figure text")
			}
			if !strings.Contains(res.Text, "Figure") {
				t.Error("missing title")
			}
		})
	}
}

func TestFitFigureCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	// Figures 3-5 show fits whose bands cover most points; verify the
	// machinery reports plausible coverage for each.
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		res, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		fits, ok := res.Rows.([]FigureFit)
		if !ok || len(fits) == 0 {
			t.Fatalf("%s rows: %T", id, res.Rows)
		}
		for _, f := range fits {
			if f.EC < 0.8 || f.EC > 1 {
				t.Errorf("%s %s: EC %.3f", id, f.Model, f.EC)
			}
		}
	}
}

func TestMixtureValidationWithTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	res, err := MixtureValidationWithTrend(core.LinearTrend{})
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]Table3Row)
	if !ok || len(rows) != 28 {
		t.Fatalf("trend rows: %T (%d)", res.Rows, len(rows))
	}
	if !strings.Contains(res.ID, "linear") {
		t.Errorf("ID = %q", res.ID)
	}
}

func TestExtensionCompositeFixesWShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	res, err := ExtensionComposite()
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]ExtensionRow)
	if !ok || len(rows) != 5 {
		t.Fatalf("rows: %T (%d)", res.Rows, len(rows))
	}
	byModel := map[string]ExtensionRow{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	singleBest := byModel["quadratic"].GoF.R2Adj
	if r := byModel["competing-risks"].GoF.R2Adj; r > singleBest {
		singleBest = r
	}
	compositeBest := byModel["composite(quadratic,quadratic)"].GoF.R2Adj
	if r := byModel["composite(competing-risks,competing-risks)"].GoF.R2Adj; r > compositeBest {
		compositeBest = r
	}
	if compositeBest < 0.8 {
		t.Errorf("composite r2adj = %.4f on 1980, want > 0.8", compositeBest)
	}
	if compositeBest <= singleBest+0.2 {
		t.Errorf("composite (%.4f) should clearly beat single-dip (%.4f)",
			compositeBest, singleBest)
	}
}

func TestExtensionSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	res, err := ExtensionSelection("1990-93")
	if err != nil {
		t.Fatal(err)
	}
	rows, ok := res.Rows.([]SelectionRow)
	if !ok || len(rows) != 7 {
		t.Fatalf("rows: %T (%d)", res.Rows, len(rows))
	}
	// Ranked by PMSE ascending.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].PMSE > rows[i].PMSE {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	if _, err := ExtensionSelection("no-such-dataset"); err == nil {
		t.Error("unknown dataset: want error")
	}
}

func TestShapeClassifierOnGallery(t *testing.T) {
	// The canonical letter-shape gallery is ground truth for the
	// classifier: every noiseless curve must classify as its label.
	entries, err := dataset.Gallery()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if got := core.ClassifyShape(e.Series.Values()); string(got) != e.Shape {
			t.Errorf("gallery %s classified as %s", e.Shape, got)
		}
	}
}
