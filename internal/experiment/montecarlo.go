package experiment

import (
	"context"
	"fmt"
	"strings"

	"resilience/internal/report"
	"resilience/internal/scenario"
	"resilience/internal/service"
)

// MonteCarloRow is one (shape class, model) aggregate of the scenario
// study: empirical CI coverage and the model-selection win rate.
type MonteCarloRow struct {
	Class   string
	Model   string
	Fits    int
	MeanEC  float64
	Wins    int
	WinRate float64
}

// MonteCarlo runs a scenario-engine study through the service batch
// pool and renders the two tables the extension reports: empirical CI
// coverage by shape class, and model-selection (lowest-PMSE) win rates
// by shape class. The whole study is reproduced by cfg.Seed.
func MonteCarlo(cfg scenario.StudyConfig) (*Result, error) {
	svc := service.New(service.Config{})
	res, err := scenario.RunStudy(context.Background(), svc, cfg)
	if err != nil {
		return nil, err
	}

	var rows []MonteCarloRow
	covHeaders := []string{"class", "series"}
	winHeaders := []string{"class", "series"}
	for _, m := range res.Models {
		covHeaders = append(covHeaders, "EC "+m)
		winHeaders = append(winHeaders, "wins "+m)
	}
	covTbl := report.NewTable(covHeaders...)
	winTbl := report.NewTable(winHeaders...)
	for _, cs := range res.Classes {
		covRow := []string{cs.Class, fmt.Sprintf("%d", cs.SeriesCount)}
		winRow := []string{cs.Class, fmt.Sprintf("%d", cs.SeriesCount)}
		for _, m := range res.Models {
			if cs.Fits[m] > 0 {
				covRow = append(covRow, report.Pct(cs.MeanEC[m]))
			} else {
				covRow = append(covRow, "-")
			}
			winRate := float64(cs.Wins[m]) / float64(cs.SeriesCount)
			winRow = append(winRow, fmt.Sprintf("%d (%s)", cs.Wins[m], report.Pct(winRate)))
			rows = append(rows, MonteCarloRow{
				Class: cs.Class, Model: m, Fits: cs.Fits[m],
				MeanEC: cs.MeanEC[m], Wins: cs.Wins[m], WinRate: winRate,
			})
		}
		covTbl.MustAddRow(covRow...)
		winTbl.MustAddRow(winRow...)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Monte Carlo study: %d scenarios (seed %d) over spec %q, %d trajectories fitted.\n\n",
		cfg.Scenarios, cfg.Seed, cfg.Spec.Name, res.Series)
	fmt.Fprintf(&b, "Empirical CI coverage by shape class (nominal %s):\n%s\n",
		report.Pct(res.NominalCoverage), covTbl.String())
	fmt.Fprintf(&b, "Model-selection win rate by shape class (lowest PMSE):\n%s", winTbl.String())
	return &Result{
		ID:    "ext-montecarlo",
		Title: "Extension: Monte Carlo coverage and model-selection study over coupled scenarios",
		Text:  b.String(),
		Rows:  rows,
	}, nil
}

// ExtensionMonteCarlo is the registered default study: the "pair"
// coupled preset (V-shaped upstream driving a hysteretic U-shaped
// downstream, both shock processes) raced between the paper's two
// bathtub families. The scenario count keeps the registered experiment
// quick; `resil simulate -study` and scripts/sim_smoke.sh scale the
// same pipeline to N >= 1000.
func ExtensionMonteCarlo() (*Result, error) {
	sp, err := scenario.Preset("pair")
	if err != nil {
		return nil, err
	}
	return MonteCarlo(scenario.StudyConfig{
		Spec:      sp,
		Scenarios: 60,
		Seed:      7,
		Models:    []string{"quadratic", "competing-risks"},
	})
}
