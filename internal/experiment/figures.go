package experiment

import (
	"fmt"
	"strings"

	"resilience/internal/core"
	"resilience/internal/dataset"
	"resilience/internal/report"
	"resilience/internal/timeseries"
)

// FigureFit bundles the data a fitted-curve figure renders: the series,
// the fitted curve sampled at the data times, and the confidence band.
type FigureFit struct {
	Dataset string
	Model   string
	Band    *core.Band
	EC      float64
}

// Figure1 renders the conceptual resilience curve of Fig. 1: nominal
// performance, a disruption at t_h, degradation to a minimum at t_d, and
// recovery to degraded, nominal, or improved steady state at t_r.
func Figure1() (*Result, error) {
	// A competing-risks section provides the bathtub dip.
	m := crModel
	params := []float64{1, 0.6, 0.004}
	during := func(t float64) float64 { return m.Eval(params, t) }

	const (
		th = 10.0
		tr = 40.0
	)
	nominal, err := core.NewPiecewise(th, tr, 1, during)
	if err != nil {
		return nil, fmt.Errorf("fig1 nominal: %w", err)
	}

	plot := report.NewPlot(mustTitle("fig1"), 72, 18)
	plot.SetLabels("time", "performance P(t)")
	var times, base, degraded, improved []float64
	for t := 0.0; t <= 55; t += 0.5 {
		times = append(times, t)
		v := nominal.Eval(t)
		base = append(base, v)
		// Alternative post-recovery levels branch after the minimum.
		if t <= tr {
			degraded = append(degraded, v)
			improved = append(improved, v)
		} else {
			degraded = append(degraded, v*0.96)
			improved = append(improved, v*1.05)
		}
	}
	if err := plot.AddSeries("nominal recovery", 'o', times, base); err != nil {
		return nil, err
	}
	if err := plot.AddSeries("degraded recovery", '-', times, degraded); err != nil {
		return nil, err
	}
	if err := plot.AddSeries("improved recovery", '+', times, improved); err != nil {
		return nil, err
	}
	text := plot.String() +
		fmt.Sprintf("\nt_h = %.0f (hazard), t_r = %.0f (new steady state)\n", th, tr)
	return &Result{ID: "fig1", Title: mustTitle("fig1"), Text: text, Rows: nominal, Plot: plot}, nil
}

// Figure2 renders all seven recession curves on shared axes, as in
// Fig. 2.
func Figure2() (*Result, error) {
	recs, err := dataset.Recessions()
	if err != nil {
		return nil, err
	}
	plot := report.NewPlot(mustTitle("fig2"), 76, 24)
	plot.SetLabels("months after employment peak", "payroll employment index")
	markers := []byte{'1', '2', '3', '4', '5', '6', '7'}
	for i, rec := range recs {
		if err := plot.AddSeries(rec.Name+" ("+rec.Shape+")", markers[i], rec.Series.Times(), rec.Series.Values()); err != nil {
			return nil, err
		}
	}
	var b strings.Builder
	b.WriteString(plot.String())
	b.WriteString("\nShape classification (ClassifyShape):\n")
	for _, rec := range recs {
		b.WriteString(fmt.Sprintf("  %-8s documented %-2s classified %s\n",
			rec.Name, rec.Shape, core.ClassifyShape(rec.Series.Values())))
	}
	return &Result{ID: "fig2", Title: mustTitle("fig2"), Text: b.String(), Rows: recs, Plot: plot}, nil
}

// fitFigure renders one dataset with one or more fitted models plus 95%
// confidence bands — the shared engine behind Figures 3–6.
func fitFigure(id, datasetName string, models []core.Model) (*Result, error) {
	rec, err := dataset.ByName(datasetName)
	if err != nil {
		return nil, err
	}
	plot := report.NewPlot(mustTitle(id), 76, 22)
	plot.SetLabels("months after employment peak", "payroll employment index")
	if err := plot.AddSeries(datasetName+" data", 'o', rec.Series.Times(), rec.Series.Values()); err != nil {
		return nil, err
	}
	markers := []byte{'*', '#'}
	var fits []FigureFit
	for i, m := range models {
		v, err := core.Validate(m, rec.Series, core.ValidateConfig{})
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, m.Name(), err)
		}
		if err := plot.AddSeries(m.Name()+" fit", markers[i%len(markers)], v.Band.Times, v.Band.Center); err != nil {
			return nil, err
		}
		// One band only (the first model's), to keep the ASCII readable;
		// every band is still returned in Rows.
		if i == 0 {
			if err := plot.SetBand(v.Band.Times, v.Band.Lower, v.Band.Upper); err != nil {
				return nil, err
			}
		}
		fits = append(fits, FigureFit{Dataset: datasetName, Model: m.Name(), Band: v.Band, EC: v.EC})
	}
	var b strings.Builder
	b.WriteString(plot.String())
	trainLen := trainSplit(rec.Series)
	b.WriteString(fmt.Sprintf("\nFirst %d months fit the model; the last %d validate predictions.\n",
		trainLen, rec.Series.Len()-trainLen))
	for _, f := range fits {
		b.WriteString(fmt.Sprintf("  %-16s empirical coverage %s (sigma %.6f)\n",
			f.Model, report.Pct(f.EC), f.Band.Sigma))
	}
	return &Result{ID: id, Title: mustTitle(id), Text: b.String(), Rows: fits, Plot: plot}, nil
}

// trainSplit mirrors the 90% train split used by core.ValidateConfig.
func trainSplit(s *timeseries.Series) int {
	train, _, err := s.SplitFraction(0.9)
	if err != nil {
		return s.Len()
	}
	return train.Len()
}

// Figure3 reproduces Fig. 3: quadratic fit and 95% CI on 2001-05.
func Figure3() (*Result, error) {
	return fitFigure("fig3", "2001-05", []core.Model{quadModel})
}

// Figure4 reproduces Fig. 4: competing-risks fit and 95% CI on 1990-93.
func Figure4() (*Result, error) {
	return fitFigure("fig4", "1990-93", []core.Model{crModel})
}

// Figure5 reproduces Fig. 5: Weibull-Exponential mixture fit on 1990-93.
func Figure5() (*Result, error) {
	mix, err := core.NewMixture(core.WeibullFamily{}, core.ExpFamily{}, core.LogTrend{})
	if err != nil {
		return nil, err
	}
	return fitFigure("fig5", "1990-93", []core.Model{mix})
}

// Figure6 reproduces Fig. 6: Exponential-Weibull and Weibull-Weibull
// mixture fits on 1981-83.
func Figure6() (*Result, error) {
	expWei, err := core.NewMixture(core.ExpFamily{}, core.WeibullFamily{}, core.LogTrend{})
	if err != nil {
		return nil, err
	}
	weiWei, err := core.NewMixture(core.WeibullFamily{}, core.WeibullFamily{}, core.LogTrend{})
	if err != nil {
		return nil, err
	}
	return fitFigure("fig6", "1981-83", []core.Model{expWei, weiWei})
}
