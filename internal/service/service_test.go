package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"resilience/internal/monitor"
	"resilience/internal/registry"
)

// testValues is a smooth V-shaped recovery curve every model family can
// fit: dip to a minimum around t=14 then recover past the baseline.
func testValues() []float64 {
	vals := make([]float64, 36)
	for i := range vals {
		x := float64(i)
		vals[i] = 1 - 0.03*math.Sin(math.Pi*math.Min(x/28, 1)) + 0.0008*math.Max(0, x-28)
	}
	return vals
}

// Every registered canonical name and alias must round-trip through the
// full Fit pipeline, resolving to its canonical entry.
func TestFitRoundTripsEveryNameAndAlias(t *testing.T) {
	svc := New(Config{FitCacheSize: 32})
	for _, e := range registry.All() {
		for _, name := range append([]string{e.Name}, e.Aliases...) {
			out, err := svc.Fit(context.Background(), Request{Model: name, Values: testValues()})
			if err != nil {
				t.Fatalf("Fit(%q): %v", name, err)
			}
			if out.Model.Name != e.Name {
				t.Errorf("Fit(%q) resolved %q, want %q", name, out.Model.Name, e.Name)
			}
			if out.Validation == nil || out.Validation.Fit == nil {
				t.Fatalf("Fit(%q) returned no validation", name)
			}
		}
	}
}

// The cache key is built from the canonical registry name, so different
// spellings and aliases of one model share a single cache entry.
func TestFitCacheKeyCanonicalAcrossSpellings(t *testing.T) {
	svc := New(Config{FitCacheSize: 8})
	first, err := svc.Fit(context.Background(), Request{Model: "Quadratic", Values: testValues()})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first fit reported cached")
	}
	for _, spelling := range []string{"quadratic", "QUADRATIC", "quad", " Quad "} {
		out, err := svc.Fit(context.Background(), Request{Model: spelling, Values: testValues()})
		if err != nil {
			t.Fatalf("Fit(%q): %v", spelling, err)
		}
		if !out.Cached {
			t.Errorf("Fit(%q) missed the cache warmed by \"Quadratic\"", spelling)
		}
		for i, p := range out.Validation.Fit.Params {
			if p != first.Validation.Fit.Params[i] {
				t.Errorf("Fit(%q) params differ from cached fit", spelling)
				break
			}
		}
	}
	if n := svc.CacheLen(); n != 1 {
		t.Errorf("cache holds %d entries after 5 spellings of one request, want 1", n)
	}
}

func TestFitRejectsUnknownModelAndBadInput(t *testing.T) {
	svc := New(Config{})
	cases := []struct {
		name  string
		req   Request
		field string
	}{
		{"unknown model", Request{Model: "gompertz", Values: testValues()}, "model"},
		{"empty model", Request{Values: testValues()}, "model"},
		{"no values", Request{Model: "quadratic"}, "values"},
		{"nan value", Request{Model: "quadratic", Values: []float64{1, math.NaN(), 1}}, "values"},
		{"mismatched times", Request{Model: "quadratic", Times: []float64{0, 1}, Values: []float64{1, 0.9, 1}}, "times"},
		{"bad train fraction", Request{Model: "quadratic", Values: testValues(), TrainFraction: 1}, "train_fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Fit(context.Background(), tc.req)
			var ierr *InputError
			if !errors.As(err, &ierr) {
				t.Fatalf("err = %v, want *InputError", err)
			}
			if ierr.Field != tc.field {
				t.Errorf("field = %q, want %q (%v)", ierr.Field, tc.field, ierr)
			}
		})
	}
}

// Predict, Metrics, Forecast, and Intervention share the pipeline; one
// smoke pass each through an alias proves the wiring.
func TestPipelineMethodsResolveAliases(t *testing.T) {
	svc := New(Config{FitCacheSize: 8})
	ctx := context.Background()
	vals := testValues()

	pred, err := svc.Predict(ctx, Request{Model: "quad", Values: vals})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.MinimumTime <= 0 || !pred.RecoveryReached {
		t.Errorf("predict: minimum %v, reached %v", pred.MinimumTime, pred.RecoveryReached)
	}

	met, err := svc.Metrics(ctx, Request{Model: "hjorth", Values: vals})
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if len(met.Rows) != 8 {
		t.Errorf("metrics rows = %d, want 8", len(met.Rows))
	}
	if met.Model.Name != "competing-risks" {
		t.Errorf("hjorth resolved to %q", met.Model.Name)
	}

	fc, err := svc.Forecast(ctx, Request{Model: "quad", Values: vals, Steps: 4})
	if err != nil {
		t.Fatalf("Forecast: %v", err)
	}
	if len(fc.Forecast.Times) != 4 {
		t.Errorf("forecast times = %d, want 4", len(fc.Forecast.Times))
	}
	// Forecast shares the plain-fit cache entry warmed by Predict.
	if !fc.Cached {
		t.Error("forecast missed the fit-cache entry warmed by predict")
	}

	iv, err := svc.Intervention(ctx, Request{
		Model: "quad", Values: vals,
		InterventionStart: 5, InterventionAccel: 2, Level: 0.995,
	})
	if err != nil {
		t.Fatalf("Intervention: %v", err)
	}
	if iv.Impact == nil {
		t.Error("intervention returned no impact")
	}
	if !iv.Cached {
		t.Error("intervention missed the shared fit-cache entry")
	}
}

// The service owns the monitor fit counters: one optimizer run per miss,
// nothing counted on cache hits.
func TestMonitorCountersTrackOptimizerWorkOnly(t *testing.T) {
	monitor.ResetCounters()
	t.Cleanup(monitor.ResetCounters)
	svc := New(Config{FitCacheSize: 8})
	ctx := context.Background()
	if _, err := svc.Fit(ctx, Request{Model: "quadratic", Values: testValues()}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Fit(ctx, Request{Model: "quad", Values: testValues()}); err != nil {
		t.Fatal(err)
	}
	if c := monitor.Counters(); c.Fits != 1 {
		t.Errorf("fits = %d, want 1 (cache hit must not count)", c.Fits)
	}
}

func TestFitHonorsCancellation(t *testing.T) {
	svc := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := svc.Fit(ctx, Request{Model: "weibull-weibull", Values: testValues()})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
