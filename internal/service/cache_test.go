package service

import (
	"sync"
	"testing"

	"resilience/internal/timeseries"
)

func mustSeries(t *testing.T, vals []float64) *timeseries.Series {
	t.Helper()
	s, err := timeseries.FromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFitCacheLRUMechanics(t *testing.T) {
	c := newFitCache(2)
	s1 := mustSeries(t, []float64{1, 0.9, 0.95, 1})
	s2 := mustSeries(t, []float64{1, 0.8, 0.85, 1})
	s3 := mustSeries(t, []float64{1, 0.7, 0.75, 1})
	k1 := fitCacheKey("fit", "quadratic", s1)
	k2 := fitCacheKey("fit", "quadratic", s2)
	k3 := fitCacheKey("fit", "quadratic", s3)

	if _, ok := c.get(k1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(k1, "one")
	c.put(k2, "two")
	if v, ok := c.get(k1); !ok || v != "one" {
		t.Fatalf("get k1 = %v, %v", v, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.put(k3, "three")
	if _, ok := c.get(k2); ok {
		t.Error("k2 survived eviction; LRU order not honored")
	}
	if _, ok := c.get(k1); !ok {
		t.Error("k1 evicted despite being most recently used")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Refreshing an existing key must not grow the cache.
	c.put(k1, "one-again")
	if c.len() != 2 {
		t.Errorf("len after refresh = %d, want 2", c.len())
	}
	if v, _ := c.get(k1); v != "one-again" {
		t.Errorf("refreshed value = %v", v)
	}
}

func TestFitCacheKeyDiscriminates(t *testing.T) {
	s := mustSeries(t, []float64{1, 0.9, 0.95, 1})
	sOther := mustSeries(t, []float64{1, 0.9, 0.95, 1.0000001})
	base := fitCacheKey("fit", "quadratic", s)
	for name, other := range map[string]cacheKey{
		"different op":       fitCacheKey("validate", "quadratic", s),
		"different model":    fitCacheKey("fit", "exp-exp", s),
		"different series":   fitCacheKey("fit", "quadratic", sOther),
		"extra config value": fitCacheKey("fit", "quadratic", s, 0.9),
	} {
		if other == base {
			t.Errorf("%s produced a colliding key", name)
		}
	}
	if again := fitCacheKey("fit", "quadratic", s); again != base {
		t.Error("identical inputs produced different keys")
	}
}

func TestFitCacheNilDisabled(t *testing.T) {
	var c *fitCache // what a Service holds when FitCacheSize is 0
	s := mustSeries(t, []float64{1, 0.9, 0.95, 1})
	k := fitCacheKey("fit", "quadratic", s)
	c.put(k, "x")
	if _, ok := c.get(k); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("disabled cache reports entries")
	}
}

// TestFitCacheConcurrentHammer exercises the LRU under concurrent mixed
// get/put from many goroutines; meaningful under -race.
func TestFitCacheConcurrentHammer(t *testing.T) {
	c := newFitCache(16)
	series := make([]*timeseries.Series, 32)
	for i := range series {
		series[i] = mustSeries(t, []float64{1, 0.9, 0.95, 1 + float64(i)/100})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fitCacheKey("fit", "quadratic", series[(g*7+i)%len(series)])
				if v, ok := c.get(k); ok {
					if _, isInt := v.(int); !isInt {
						t.Errorf("unexpected cached value %v", v)
					}
				} else {
					c.put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Errorf("cache grew past its bound: %d", c.len())
	}
}
