// Package service is the transport-agnostic fitting pipeline shared by
// the HTTP server, the resil CLI, and the experiment harness. It owns
// everything between a decoded request and a computed result: input
// validation with field-level errors, model resolution through the
// central registry (canonical names, aliases), fit-cache lookups keyed
// by canonical inputs, the degradation chain, and the monitor counters —
// so every transport fits, predicts, forecasts, and batches with
// identical semantics instead of each keeping its own copy of the
// pipeline.
//
// The transports stay thin: the server decodes JSON and maps the
// service's typed errors onto HTTP statuses; the CLI parses flags and
// renders tables. Neither resolves model names, orders fallbacks, or
// touches the cache directly.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"

	"resilience/internal/core"
	"resilience/internal/monitor"
	"resilience/internal/registry"
	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// Config tunes a Service. The zero value selects production defaults:
// degradation chain enabled with the registry's fallback order, caching
// disabled.
type Config struct {
	// Fallback overrides the degradation chain policy. When its Fallbacks
	// are empty they are filled from registry.FallbackChain(), so the
	// chain — like every other model reference — resolves through the
	// registry.
	Fallback core.FallbackPolicy
	// DisableFallback turns the degradation chain off: a failed fit is
	// returned as an error instead of a simpler model's result.
	DisableFallback bool
	// FitCacheSize bounds the fit cache (entries); 0 disables caching.
	// Only successful outcomes are cached; errors and cancellations
	// always re-run.
	FitCacheSize int
}

// Service executes the fitting pipeline. It is safe for concurrent use:
// the cache is internally locked and everything else is request-scoped.
type Service struct {
	policy core.FallbackPolicy
	cache  *fitCache
}

// New builds a Service from cfg.
func New(cfg Config) *Service {
	pol := cfg.Fallback
	pol.Disable = pol.Disable || cfg.DisableFallback
	if len(pol.Fallbacks) == 0 {
		pol.Fallbacks = registry.FallbackChain()
	}
	return &Service{policy: pol, cache: newFitCache(cfg.FitCacheSize)}
}

// Policy returns the resolved degradation-chain policy, so stateful
// subsystems built on the service (the stream session manager) apply
// the same retry/fallback behavior to their refits that one-shot fits
// get.
func (s *Service) Policy() core.FallbackPolicy { return s.policy }

// InputError is a request-validation failure: the input named by Field
// is missing, malformed, or out of range. Transports map it to their
// bad-request shape (HTTP 400 with the field in the envelope, a CLI
// usage error, a per-job batch error).
type InputError struct {
	// Field names the offending request field, in the JSON wire spelling.
	Field string
	// Err is the human-readable failure.
	Err error
}

func (e *InputError) Error() string { return e.Err.Error() }
func (e *InputError) Unwrap() error { return e.Err }

func badInput(field, format string, args ...any) *InputError {
	return &InputError{Field: field, Err: fmt.Errorf(format, args...)}
}

// Request is the transport-agnostic fit-family request. Exactly one
// series source is used: a prebuilt Series (trusted callers — datasets,
// experiments) or raw Times/Values (wire callers), which are validated
// and assembled by the pipeline.
type Request struct {
	// Model is the requested model family, by canonical name or alias.
	Model string
	// Series is a prebuilt input series; when non-nil it is used as-is
	// and Times/Values are ignored.
	Series *timeseries.Series
	// Times and Values are the raw series; Times may be empty for
	// implicit 0, 1, 2, … sampling.
	Times  []float64
	Values []float64
	// TrainFraction controls the validation split (0 selects the default
	// 0.9).
	TrainFraction float64
	// CIAlpha is the confidence-interval significance level for
	// validation scorecards (0 selects the default 0.05).
	CIAlpha float64
	// Level is the recovery target for Predict and Intervention (0
	// selects the default 1.0).
	Level float64
	// Steps is the forecast horizon length (0 selects the default 6).
	Steps int
	// Alpha is the forecast significance level (0 selects the default
	// 0.05).
	Alpha float64
	// InterventionStart and InterventionAccel configure Intervention.
	InterventionStart float64
	InterventionAccel float64
	// MetricsWeight is the Eq. 21 resilience-loss weight for Metrics
	// (0 selects the default 0.5).
	MetricsWeight float64
	// MetricsContinuous selects continuous integration for Metrics
	// instead of the paper's discrete sums.
	MetricsContinuous bool
}

// Validate rejects out-of-range and non-finite request fields with
// field-specific errors before anything reaches the fitters. The model
// name is checked separately, by registry resolution.
func (r *Request) Validate() *InputError {
	if r.Series == nil {
		if len(r.Values) == 0 {
			return badInput("values", "values required")
		}
		for i, v := range r.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return badInput("values", "values[%d] is %g; every value must be finite", i, v)
			}
		}
		if len(r.Times) > 0 {
			if len(r.Times) != len(r.Values) {
				return badInput("times", "%d times for %d values; lengths must match", len(r.Times), len(r.Values))
			}
			for i, t := range r.Times {
				if math.IsNaN(t) || math.IsInf(t, 0) {
					return badInput("times", "times[%d] is %g; every time must be finite", i, t)
				}
			}
		}
	}
	if tf := r.TrainFraction; math.IsNaN(tf) || tf < 0 || tf >= 1 {
		return badInput("train_fraction", "train_fraction %g outside [0, 1); 0 selects the default 0.9", tf)
	}
	if al := r.CIAlpha; math.IsNaN(al) || al < 0 || al >= 1 {
		return badInput("ci_alpha", "ci_alpha %g outside [0, 1); 0 selects the default 0.05", al)
	}
	if lv := r.Level; math.IsNaN(lv) || math.IsInf(lv, 0) || lv < 0 {
		return badInput("level", "level %g must be finite and non-negative; 0 selects the default 1.0", lv)
	}
	if r.Steps < 0 || r.Steps > 10000 {
		return badInput("steps", "steps %d outside [0, 10000]; 0 selects the default 6", r.Steps)
	}
	if al := r.Alpha; math.IsNaN(al) || al < 0 || al >= 1 {
		return badInput("alpha", "alpha %g outside [0, 1); 0 selects the default 0.05", al)
	}
	if s := r.InterventionStart; math.IsNaN(s) || math.IsInf(s, 0) {
		return badInput("intervention_start", "intervention_start must be finite")
	}
	if ac := r.InterventionAccel; math.IsNaN(ac) || math.IsInf(ac, 0) || ac < 0 {
		return badInput("intervention_accel", "intervention_accel %g must be finite and non-negative", ac)
	}
	if wt := r.MetricsWeight; math.IsNaN(wt) || wt < 0 || wt >= 1 {
		return badInput("metrics_weight", "metrics_weight %g outside [0, 1); 0 selects the default 0.5", wt)
	}
	return nil
}

// prepare resolves the model through the registry and assembles the
// validated series — the shared front half of every pipeline method.
func (r *Request) prepare() (registry.Entry, *timeseries.Series, error) {
	entry, err := registry.Lookup(r.Model)
	if err != nil {
		return registry.Entry{}, nil, &InputError{Field: "model", Err: err}
	}
	if ierr := r.Validate(); ierr != nil {
		return registry.Entry{}, nil, ierr
	}
	if r.Series != nil {
		return entry, r.Series, nil
	}
	var series *timeseries.Series
	if len(r.Times) > 0 {
		series, err = timeseries.NewSeries(r.Times, r.Values)
	} else {
		series, err = timeseries.FromValues(r.Values)
	}
	if err != nil {
		return registry.Entry{}, nil, &InputError{Field: "values", Err: fmt.Errorf("series: %w", err)}
	}
	return entry, series, nil
}

// FitOutcome is a completed validation-pipeline run: the scorecard, the
// degradation annotation, and whether the result came from the cache.
type FitOutcome struct {
	// Model is the resolved registry entry for the *requested* family;
	// the fitted family after degradation is Validation.Fit.Model.
	Model registry.Entry
	// Validation is the split/fit/score/coverage scorecard.
	Validation *core.Validation
	// Degrade annotates the degradation-chain outcome (nil only when the
	// chain never ran).
	Degrade *core.DegradeInfo
	// Cached is true when the result was served from the fit cache
	// instead of running the optimizer.
	Cached bool
}

// Fit runs the full validation pipeline (split, fit with degradation
// chain, GoF, confidence band, coverage) for the requested model.
func (s *Service) Fit(ctx context.Context, req Request) (*FitOutcome, error) {
	entry, series, err := req.prepare()
	if err != nil {
		return nil, err
	}
	v, info, cached, err := s.cachedValidate(ctx, entry, series, req.TrainFraction, req.CIAlpha)
	if err != nil {
		return nil, err
	}
	return &FitOutcome{Model: entry, Validation: v, Degrade: info, Cached: cached}, nil
}

// PredictOutcome is a recovery prediction from a plain fit.
type PredictOutcome struct {
	Model   registry.Entry
	Fit     *core.FitResult
	Degrade *core.DegradeInfo
	Cached  bool
	// MinimumTime and MinimumValue locate the fitted curve's performance
	// minimum t_d.
	MinimumTime  float64
	MinimumValue float64
	// RecoveryLevel is the target level (defaulted); RecoveryTime is when
	// the curve regains it, NaN when it never does (RecoveryErr explains).
	RecoveryLevel   float64
	RecoveryTime    float64
	RecoveryReached bool
	RecoveryErr     string
}

// Predict fits the model and predicts the time of minimum performance
// and the recovery time to the requested level.
func (s *Service) Predict(ctx context.Context, req Request) (*PredictOutcome, error) {
	entry, series, err := req.prepare()
	if err != nil {
		return nil, err
	}
	fit, info, cached, err := s.cachedFit(ctx, entry, series)
	if err != nil {
		return nil, err
	}
	_, horizon := series.Span()
	td, err := core.ModelMinimum(fit, horizon)
	if err != nil {
		return nil, err
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	out := &PredictOutcome{
		Model: entry, Fit: fit, Degrade: info, Cached: cached,
		MinimumTime: td, MinimumValue: fit.Eval(td),
		RecoveryLevel: level, RecoveryTime: math.NaN(),
	}
	if tr, err := core.RecoveryTime(fit, level, horizon); err == nil {
		out.RecoveryTime = tr
		out.RecoveryReached = true
	} else {
		out.RecoveryErr = err.Error()
	}
	return out, nil
}

// MetricsOutcome is the interval-based resilience-metrics comparison.
type MetricsOutcome struct {
	Model      registry.Entry
	Validation *core.Validation
	Degrade    *core.DegradeInfo
	Cached     bool
	Rows       []core.MetricComparison
}

// Metrics runs the validation pipeline and compares the eight
// interval-based metrics (actual vs predicted).
func (s *Service) Metrics(ctx context.Context, req Request) (*MetricsOutcome, error) {
	entry, series, err := req.prepare()
	if err != nil {
		return nil, err
	}
	v, info, cached, err := s.cachedValidate(ctx, entry, series, req.TrainFraction, req.CIAlpha)
	if err != nil {
		return nil, err
	}
	mcfg := core.MetricsConfig{Alpha: req.MetricsWeight}
	if req.MetricsContinuous {
		mcfg.Mode = core.Continuous
	}
	rows, err := core.CompareMetrics(v, series, mcfg)
	if err != nil {
		return nil, err
	}
	return &MetricsOutcome{Model: entry, Validation: v, Degrade: info, Cached: cached, Rows: rows}, nil
}

// ForecastOutcome is a future-horizon forecast with uncertainty bands.
type ForecastOutcome struct {
	Model    registry.Entry
	Fit      *core.FitResult
	Degrade  *core.DegradeInfo
	Cached   bool
	Forecast *core.Forecast
}

// Forecast fits the model and forecasts the requested horizon.
func (s *Service) Forecast(ctx context.Context, req Request) (*ForecastOutcome, error) {
	entry, series, err := req.prepare()
	if err != nil {
		return nil, err
	}
	fit, info, cached, err := s.cachedFit(ctx, entry, series)
	if err != nil {
		return nil, err
	}
	steps := req.Steps
	if steps <= 0 {
		steps = 6
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = 0.05
	}
	fc, err := core.ForecastHorizon(fit, steps, alpha)
	if err != nil {
		return nil, err
	}
	return &ForecastOutcome{Model: entry, Fit: fit, Degrade: info, Cached: cached, Forecast: fc}, nil
}

// InterventionOutcome is a restoration-scenario what-if analysis.
type InterventionOutcome struct {
	Model   registry.Entry
	Fit     *core.FitResult
	Degrade *core.DegradeInfo
	Cached  bool
	Impact  *core.ScenarioImpact
}

// Intervention fits the model and evaluates the configured restoration
// scenario against the baseline curve.
func (s *Service) Intervention(ctx context.Context, req Request) (*InterventionOutcome, error) {
	entry, series, err := req.prepare()
	if err != nil {
		return nil, err
	}
	iv := core.Intervention{Start: req.InterventionStart, Accel: req.InterventionAccel}
	if iv.Accel == 0 {
		iv.Accel = 2 // default scenario: double the recovery speed
	}
	fit, info, cached, err := s.cachedFit(ctx, entry, series)
	if err != nil {
		return nil, err
	}
	level := req.Level
	if level == 0 {
		level = 1
	}
	_, horizon := series.Span()
	impact, err := core.EvaluateIntervention(fit, iv, level, horizon)
	if err != nil {
		return nil, err
	}
	return &InterventionOutcome{Model: entry, Fit: fit, Degrade: info, Cached: cached, Impact: impact}, nil
}

// validateOutcome and fitOutcome are the units stored in the fit cache.
// They carry the degradation annotation alongside the result so a cached
// response reports the same degraded/fallback fields as the original.
type validateOutcome struct {
	v    *core.Validation
	info *core.DegradeInfo
}

type fitOutcome struct {
	fit  *core.FitResult
	info *core.DegradeInfo
}

// cachedValidate runs the validation pipeline (ValidateWithFallback)
// through the fit cache. The reported bool is true on a cache hit. Only
// successful outcomes are stored: errors, cancellations, and timeouts
// must re-run, not replay. The cache key is built from the canonical
// registry name, so "Quadratic", "quadratic", and "quad" share one
// entry.
func (s *Service) cachedValidate(ctx context.Context, entry registry.Entry, series *timeseries.Series, trainFraction, ciAlpha float64) (*core.Validation, *core.DegradeInfo, bool, error) {
	lookup := telemetry.StartSpan(ctx, "cache.lookup")
	key := fitCacheKey("validate", entry.Name, series, trainFraction, ciAlpha)
	if hit, ok := s.cache.get(key); ok {
		lookup.End(telemetry.Str("outcome", "hit"), telemetry.Str("model", entry.Name))
		o := hit.(*validateOutcome)
		return o.v, o.info, true, nil
	}
	lookup.End(telemetry.Str("outcome", "miss"), telemetry.Str("model", entry.Name))
	v, info, err := core.ValidateWithFallback(ctx, entry.Model, series,
		core.ValidateConfig{TrainFraction: trainFraction, Alpha: ciAlpha}, s.policy)
	countFitOutcome(info, err)
	if err == nil {
		s.cache.put(key, &validateOutcome{v: v, info: info})
	}
	return v, info, false, err
}

// cachedFit is cachedValidate for the plain-fit pipeline
// (FitWithFallback), shared by Predict, Forecast, and Intervention — the
// endpoints fit identically, so a predict can warm the cache for a
// forecast of the same series and vice versa.
func (s *Service) cachedFit(ctx context.Context, entry registry.Entry, series *timeseries.Series) (*core.FitResult, *core.DegradeInfo, bool, error) {
	lookup := telemetry.StartSpan(ctx, "cache.lookup")
	key := fitCacheKey("fit", entry.Name, series)
	if hit, ok := s.cache.get(key); ok {
		lookup.End(telemetry.Str("outcome", "hit"), telemetry.Str("model", entry.Name))
		o := hit.(*fitOutcome)
		return o.fit, o.info, true, nil
	}
	lookup.End(telemetry.Str("outcome", "miss"), telemetry.Str("model", entry.Name))
	fit, info, err := core.FitWithFallback(ctx, entry.Model, series, core.FitConfig{}, s.policy)
	countFitOutcome(info, err)
	if err == nil {
		s.cache.put(key, &fitOutcome{fit: fit, info: info})
	}
	return fit, info, false, err
}

// countFitOutcome updates the process-wide monitor counters from a
// degradation-chain outcome. Cache hits are deliberately not counted:
// the counters track actual optimizer work.
func countFitOutcome(info *core.DegradeInfo, err error) {
	monitor.CountFit()
	if info != nil {
		if info.Degraded && err == nil {
			monitor.CountFallback()
		}
		if info.PanicRecovered {
			monitor.CountPanicRecovery()
		}
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		monitor.CountCancellation()
	}
}

// CacheLen reports the resident fit-cache entry count (0 when caching is
// disabled).
func (s *Service) CacheLen() int { return s.cache.len() }
