package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"resilience/internal/telemetry"
)

// MaxBatchJobs bounds one batch request. Each job is a full optimizer
// run (~10–100 ms), so the cap keeps a single request from monopolizing
// the process; callers with more work split it across requests.
const MaxBatchJobs = 256

func init() {
	telemetry.RegisterFamily("resil_batch_requests_total", "counter",
		"Batch requests executed by the fitting service.")
	telemetry.RegisterFamily("resil_batch_jobs_total", "counter",
		"Individual jobs executed inside batch requests.")
}

// BatchItem is one job's result: exactly one of Outcome or Err is set.
// Index is the job's position in the request, so consumers can correlate
// out-of-order completions (the results slice is already request-ordered;
// the index is for wire formats that carry items individually).
type BatchItem struct {
	Index   int
	Outcome *FitOutcome
	Err     error
}

// EffectiveWorkers resolves a requested worker count against a job
// count: non-positive (auto) or oversized requests clamp to
// min(jobs, GOMAXPROCS). Exported so transports can report the pool
// size actually used.
func EffectiveWorkers(workers, jobs int) int {
	if workers <= 0 || workers > jobs {
		workers = jobs
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Batch fits every job through the full Fit pipeline (registry
// resolution, validation, cache, degradation chain) on a bounded worker
// pool and returns results in request order. workers <= 0 selects
// min(len(jobs), GOMAXPROCS).
//
// Job errors (unknown model, bad input, non-convergence) are reported
// per-item, never as a call error; Batch itself errors only on an
// over-limit job count or when ctx is done before all jobs complete —
// cancellation also aborts jobs still in flight, since the context
// reaches every optimizer iteration.
//
// Determinism: each job claims its slot through an atomic cursor and
// writes only results[slot], and each individual fit is deterministic
// (multistart winner = best F, ties to the lowest start index), so a
// parallel batch is bit-identical to running the jobs sequentially.
func (s *Service) Batch(ctx context.Context, jobs []Request, workers int) ([]BatchItem, error) {
	if len(jobs) == 0 {
		return nil, &InputError{Field: "jobs", Err: fmt.Errorf("jobs required")}
	}
	if len(jobs) > MaxBatchJobs {
		return nil, &InputError{Field: "jobs", Err: fmt.Errorf("%d jobs exceeds limit %d", len(jobs), MaxBatchJobs)}
	}
	workers = EffectiveWorkers(workers, len(jobs))
	telemetry.GetOrCreateCounter("resil_batch_requests_total").Inc()
	telemetry.GetOrCreateCounter("resil_batch_jobs_total").Add(uint64(len(jobs)))

	results := make([]BatchItem, len(jobs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				// One span per job, pickup to done, so a slow batch is
				// attributable to the specific job (and worker queueing
				// shows as gaps between sibling spans).
				jctx, job := telemetry.StartSpanCtx(ctx, "batch.job")
				out, err := s.Fit(jctx, jobs[i])
				job.EndErr(err, telemetry.Int("index", i), telemetry.Str("model", jobs[i].Model))
				results[i] = BatchItem{Index: i, Outcome: out, Err: err}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
