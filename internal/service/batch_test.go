package service

import (
	"context"
	"errors"
	"math"
	"testing"
)

// batchValues derives a distinct V-shaped series per job index so batch
// tests exercise genuinely different fits.
func batchValues(i int) []float64 {
	vals := make([]float64, 30)
	depth := 0.02 + 0.002*float64(i%7)
	for j := range vals {
		x := float64(j)
		vals[j] = 1 - depth*math.Sin(math.Pi*math.Min(x/24, 1)) + 0.0006*math.Max(0, x-24)
	}
	return vals
}

// A parallel batch must be bit-identical to the same jobs run
// sequentially through Fit — the acceptance criterion for /v1/batch.
// Caching is disabled so every job genuinely runs the optimizer.
func TestBatchParallelMatchesSequential(t *testing.T) {
	models := []string{"quadratic", "competing-risks", "weibull-exp", "exp-exp"}
	var jobs []Request
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Request{Model: models[i%len(models)], Values: batchValues(i)})
	}

	seq := New(Config{})
	want := make([]*FitOutcome, len(jobs))
	for i, job := range jobs {
		out, err := seq.Fit(context.Background(), job)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = out
	}

	par := New(Config{})
	items, err := par.Batch(context.Background(), jobs, 8)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(items) != len(jobs) {
		t.Fatalf("batch returned %d items for %d jobs", len(items), len(jobs))
	}
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("batch job %d: %v", i, item.Err)
		}
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
		got, exp := item.Outcome.Validation.Fit, want[i].Validation.Fit
		if got.Model.Name() != exp.Model.Name() {
			t.Errorf("job %d model %q, sequential %q", i, got.Model.Name(), exp.Model.Name())
		}
		for p := range exp.Params {
			if math.Float64bits(got.Params[p]) != math.Float64bits(exp.Params[p]) {
				t.Errorf("job %d param %d = %v, sequential %v (not bit-identical)",
					i, p, got.Params[p], exp.Params[p])
			}
		}
		if math.Float64bits(got.SSE) != math.Float64bits(exp.SSE) {
			t.Errorf("job %d SSE %v, sequential %v", i, got.SSE, exp.SSE)
		}
	}
}

// Job failures are reported per-item and never abort the batch.
func TestBatchReportsPerJobErrors(t *testing.T) {
	svc := New(Config{})
	jobs := []Request{
		{Model: "quadratic", Values: batchValues(0)},
		{Model: "no-such-model", Values: batchValues(1)},
		{Model: "quadratic"}, // missing values
		{Model: "quad", Values: batchValues(3)},
	}
	items, err := svc.Batch(context.Background(), jobs, 2)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if items[0].Err != nil || items[3].Err != nil {
		t.Errorf("good jobs failed: %v, %v", items[0].Err, items[3].Err)
	}
	var ierr *InputError
	if !errors.As(items[1].Err, &ierr) || ierr.Field != "model" {
		t.Errorf("unknown-model job: err = %v", items[1].Err)
	}
	if !errors.As(items[2].Err, &ierr) || ierr.Field != "values" {
		t.Errorf("missing-values job: err = %v", items[2].Err)
	}
}

func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	svc := New(Config{})
	var ierr *InputError
	if _, err := svc.Batch(context.Background(), nil, 0); !errors.As(err, &ierr) || ierr.Field != "jobs" {
		t.Errorf("empty batch: err = %v", err)
	}
	big := make([]Request, MaxBatchJobs+1)
	for i := range big {
		big[i] = Request{Model: "quadratic", Values: batchValues(i)}
	}
	if _, err := svc.Batch(context.Background(), big, 0); !errors.As(err, &ierr) || ierr.Field != "jobs" {
		t.Errorf("oversized batch: err = %v", err)
	}
}

func TestBatchHonorsCancellation(t *testing.T) {
	svc := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Request{{Model: "quadratic", Values: batchValues(0)}}
	if _, err := svc.Batch(ctx, jobs, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		workers, jobs, wantMax int
	}{
		{0, 4, 4}, {2, 4, 2}, {100, 4, 4}, {0, 1, 1}, {-3, 2, 2},
	}
	for _, tc := range cases {
		got := EffectiveWorkers(tc.workers, tc.jobs)
		if got < 1 || got > tc.wantMax {
			t.Errorf("EffectiveWorkers(%d, %d) = %d, want in [1, %d]",
				tc.workers, tc.jobs, got, tc.wantMax)
		}
	}
	if EffectiveWorkers(1, 1) != 1 {
		t.Error("EffectiveWorkers(1, 1) != 1")
	}
}
