package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"resilience/internal/telemetry"
	"resilience/internal/timeseries"
)

// The fit cache sits in front of the fitting pipeline on Fit, Predict,
// Metrics, Forecast, and Intervention. Fitting is pure: the same series,
// model, and configuration always produce the same result (the
// multistart driver is deterministic by construction), so a bounded LRU
// keyed by a digest of the request's fitting inputs turns repeat traffic
// — dashboards re-polling the same incident curve, notebooks re-running
// a cell — from a ~100 ms optimizer run into a map lookup.

func init() {
	telemetry.RegisterFamily("resil_fit_cache_hits_total", "counter",
		"Fit-pipeline requests answered from the service fit cache.")
	telemetry.RegisterFamily("resil_fit_cache_misses_total", "counter",
		"Fit-pipeline requests that ran the optimizer (cache miss or cache disabled entries stored).")
	telemetry.RegisterFamily("resil_fit_cache_entries", "gauge",
		"Entries currently resident in the service fit cache.")
}

var (
	cacheHits   = telemetry.GetOrCreateCounter("resil_fit_cache_hits_total")
	cacheMisses = telemetry.GetOrCreateCounter("resil_fit_cache_misses_total")
)

// cacheKey is the SHA-256 digest of one request's fitting inputs.
type cacheKey [sha256.Size]byte

// fitCacheKey canonicalizes the fitting inputs into a digest: the
// operation kind (validate vs plain fit — their results have different
// types), the *canonical registry* model name (so "Quadratic",
// "quadratic", and the "quad" alias all share one entry), the full
// series (times and values as raw float64 bits, length-prefixed so
// concatenations cannot collide), and any extra fit-config scalars the
// operation depends on (e.g. the validation train fraction).
func fitCacheKey(op, model string, series *timeseries.Series, extra ...float64) cacheKey {
	h := sha256.New()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeStr(op)
	writeStr(model)
	binary.LittleEndian.PutUint64(buf[:], uint64(series.Len()))
	h.Write(buf[:])
	for i := 0; i < series.Len(); i++ {
		writeF(series.Time(i))
		writeF(series.Value(i))
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(extra)))
	h.Write(buf[:])
	for _, v := range extra {
		writeF(v)
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// fitCache is a bounded, mutex-guarded LRU. Values are stored as-is and
// returned to concurrent readers, so everything cached must be treated
// as immutable after insertion; the fit pipeline's results (FitResult,
// Validation, DegradeInfo) are never mutated by consumers.
type fitCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	byKey   map[cacheKey]*list.Element
	entries *telemetry.Gauge
}

// cacheSlot is one LRU node.
type cacheSlot struct {
	key cacheKey
	val any
}

// newFitCache returns a cache bounded to max entries, or nil (fully
// disabled) when max <= 0. A nil *fitCache is safe to use: get always
// misses and put is a no-op, so callers need no branching.
func newFitCache(max int) *fitCache {
	if max <= 0 {
		return nil
	}
	return &fitCache{
		max:     max,
		ll:      list.New(),
		byKey:   make(map[cacheKey]*list.Element, max),
		entries: telemetry.GetOrCreateGauge("resil_fit_cache_entries"),
	}
}

// get returns the cached value for k and whether it was present,
// updating recency and the hit/miss counters.
func (c *fitCache) get(k cacheKey) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		cacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	cacheHits.Inc()
	return el.Value.(*cacheSlot).val, true
}

// put inserts v under k, evicting the least recently used entry when the
// cache is full. Re-inserting an existing key refreshes its value and
// recency.
func (c *fitCache) put(k cacheKey, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheSlot).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[k] = c.ll.PushFront(&cacheSlot{key: k, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheSlot).key)
	}
	c.entries.Set(float64(c.ll.Len()))
}

// len reports the resident entry count.
func (c *fitCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
