package registry

import (
	"strings"
	"testing"

	"resilience/internal/core"
)

func TestNamesCoverPaperMenu(t *testing.T) {
	want := []string{
		"quadratic", "competing-risks", "exp-bathtub",
		"exp-exp", "weibull-exp", "exp-weibull", "weibull-weibull",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], name)
		}
	}
}

// Every canonical name and alias must resolve — with any casing and
// surrounding whitespace — to the same entry, and the entry's model must
// report the canonical name.
func TestLookupNamesAliasesAndCasing(t *testing.T) {
	for _, e := range All() {
		for _, key := range append([]string{e.Name}, e.Aliases...) {
			mixed := strings.ToUpper(key[:1]) + key[1:]
			for _, variant := range []string{key, strings.ToUpper(key), " " + mixed + " "} {
				got, err := Lookup(variant)
				if err != nil {
					t.Errorf("Lookup(%q): %v", variant, err)
					continue
				}
				if got.Name != e.Name {
					t.Errorf("Lookup(%q) = %q, want %q", variant, got.Name, e.Name)
				}
				if got.Model.Name() != e.Name {
					t.Errorf("Lookup(%q).Model.Name() = %q, want %q", variant, got.Model.Name(), e.Name)
				}
			}
		}
	}
}

func TestLookupRejectsUnknownAndEmpty(t *testing.T) {
	if _, err := Lookup("gompertz-gamma"); err == nil {
		t.Error("Lookup accepted an unregistered model")
	} else if !strings.Contains(err.Error(), "quadratic") {
		t.Errorf("unknown-model error does not list options: %v", err)
	}
	if _, err := Lookup(""); err == nil {
		t.Error("Lookup accepted an empty name")
	}
}

func TestRegisterRejectsDuplicatesAndMismatches(t *testing.T) {
	if err := Register(Entry{Name: "quadratic", Family: FamilyBathtub, Model: core.QuadraticModel{}}); err == nil {
		t.Error("Register accepted a duplicate canonical name")
	}
	if err := Register(Entry{Name: "not-quadratic", Family: FamilyBathtub, Model: core.QuadraticModel{}}); err == nil {
		t.Error("Register accepted a name differing from Model.Name()")
	}
	if err := Register(Entry{Name: "nil-model", Family: FamilyBathtub}); err == nil {
		t.Error("Register accepted a nil model")
	}
}

func TestByFamilyPartitionsRegistry(t *testing.T) {
	bathtub, mixture := ByFamily(FamilyBathtub), ByFamily(FamilyMixture)
	if len(bathtub) != 3 {
		t.Errorf("bathtub entries = %d, want 3", len(bathtub))
	}
	if len(mixture) != 4 {
		t.Errorf("mixture entries = %d, want 4", len(mixture))
	}
	if len(bathtub)+len(mixture) != len(All()) {
		t.Errorf("families do not partition the registry: %d + %d != %d",
			len(bathtub), len(mixture), len(All()))
	}
}

func TestCapabilitiesMatchModelInterfaces(t *testing.T) {
	want := map[string]Capabilities{
		"quadratic":       {ClosedFormArea: true, ClosedFormRecovery: true, ClosedFormMinimum: true, AnalyticJacobian: true},
		"competing-risks": {ClosedFormArea: true, ClosedFormRecovery: true, ClosedFormMinimum: true, AnalyticJacobian: true},
		"exp-bathtub":     {ClosedFormArea: true, ClosedFormMinimum: true, AnalyticJacobian: true},
		"exp-exp":         {AnalyticJacobian: true},
		"weibull-exp":     {AnalyticJacobian: true},
		"exp-weibull":     {AnalyticJacobian: true},
		"weibull-weibull": {AnalyticJacobian: true},
	}
	for name, caps := range want {
		e := MustLookup(name)
		if e.Caps != caps {
			t.Errorf("%s capabilities = %+v, want %+v", name, e.Caps, caps)
		}
	}
}

// TestEveryEntryHasAnalyticJacobian is the lint gate for new model
// registrations: every built-in family must ship closed-form gradients
// so the whole registry stays on the cheap gradient-first fit path. A
// family that genuinely cannot provide one (e.g. a gamma CDF whose
// parameter gradient has no elementary form) must be added to the
// exceptions list here — consciously.
func TestEveryEntryHasAnalyticJacobian(t *testing.T) {
	exceptions := map[string]bool{}
	for _, e := range All() {
		if exceptions[e.Name] {
			continue
		}
		if !e.Caps.AnalyticJacobian {
			t.Errorf("registry entry %q has no analytic Jacobian; implement core.JacobianModel or add an exception", e.Name)
		}
	}
}

func TestParamNamesMirrorModels(t *testing.T) {
	for _, e := range All() {
		names := e.Model.ParamNames()
		if len(e.ParamNames) != len(names) {
			t.Fatalf("%s: ParamNames length %d, model reports %d", e.Name, len(e.ParamNames), len(names))
		}
		for i := range names {
			if e.ParamNames[i] != names[i] {
				t.Errorf("%s param[%d] = %q, want %q", e.Name, i, e.ParamNames[i], names[i])
			}
		}
	}
}

// The registry's fallback ranks and core's built-in default chain are
// two spellings of the same policy; they must stay identical.
func TestFallbackChainMatchesCoreDefaults(t *testing.T) {
	chain := FallbackChain()
	defaults := core.DefaultFallbacks()
	if len(chain) != len(defaults) {
		t.Fatalf("FallbackChain has %d links, core.DefaultFallbacks has %d", len(chain), len(defaults))
	}
	for i := range chain {
		if chain[i].Name() != defaults[i].Name() {
			t.Errorf("chain[%d] = %q, core default = %q", i, chain[i].Name(), defaults[i].Name())
		}
	}
	// Ranks must be unique and contiguous from 1.
	seen := map[int]string{}
	for _, e := range All() {
		if e.FallbackRank == 0 {
			continue
		}
		if prev, dup := seen[e.FallbackRank]; dup {
			t.Errorf("fallback rank %d shared by %q and %q", e.FallbackRank, prev, e.Name)
		}
		seen[e.FallbackRank] = e.Name
	}
	for r := 1; r <= len(chain); r++ {
		if _, ok := seen[r]; !ok {
			t.Errorf("fallback rank %d unassigned", r)
		}
	}
}
