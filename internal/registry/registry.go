// Package registry is the single definition site for the model families
// the system serves. Every family — the two bathtub hazards, the
// four-parameter exponential bathtub extension, and the paper's four
// mixture combinations — is registered exactly once, with its canonical
// name, accepted aliases, parameter metadata, capability flags, and its
// position in the default degradation chain. Every other layer (the
// HTTP server, the CLIs, the experiment harness, the public facade)
// resolves models through Lookup instead of keeping its own dispatch
// switch, so adding a model family is a one-file change: register it
// here and it becomes fit-able over HTTP, from the command line, in
// batch jobs, and in the selection/experiment pipelines.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"resilience/internal/core"
)

// Model families.
const (
	// FamilyBathtub groups the bathtub-shaped hazard models of Sec. II-A
	// (quadratic, competing-risks) and the exponential-bathtub extension.
	FamilyBathtub = "bathtub"
	// FamilyMixture groups the Sec. II-B mixture-distribution models.
	FamilyMixture = "mixture"
)

// Capabilities flags which closed-form shortcuts a model family
// implements; absent capabilities fall back to numeric routines
// (quadrature, root finding, grid search) in core.
type Capabilities struct {
	// ClosedFormArea: ∫P(t)dt has a closed form (core.AreaModel).
	ClosedFormArea bool `json:"closed_form_area"`
	// ClosedFormRecovery: the recovery time solves in closed form
	// (core.RecoveryModel).
	ClosedFormRecovery bool `json:"closed_form_recovery"`
	// ClosedFormMinimum: the time of minimum performance solves in closed
	// form (core.MinimumModel).
	ClosedFormMinimum bool `json:"closed_form_minimum"`
	// AnalyticJacobian: the family has closed-form parameter gradients
	// (core.JacobianModel answering true), so fits run gradient-first
	// Levenberg–Marquardt instead of derivative-free simplex search.
	AnalyticJacobian bool `json:"analytic_jacobian"`
}

// Entry is one registered model family.
type Entry struct {
	// Name is the canonical identifier, equal to Model.Name().
	Name string
	// Aliases are alternative spellings accepted by Lookup; they never
	// appear in responses or cache keys.
	Aliases []string
	// Family is FamilyBathtub or FamilyMixture.
	Family string
	// Description is a one-line summary for catalogs (/v1/models, CLI).
	Description string
	// Model is the shared, stateless model value. Core models are safe
	// for concurrent use, so one value serves every fit.
	Model core.Model
	// ParamNames mirrors Model.ParamNames() for metadata consumers that
	// must not construct models.
	ParamNames []string
	// Caps flags the closed-form capabilities, derived from the interfaces
	// the model implements.
	Caps Capabilities
	// FallbackRank orders the default degradation chain: rank 1 is tried
	// first when a requested model will not converge; 0 means the family
	// is not part of the chain.
	FallbackRank int
}

// entries holds registrations in registration order; index maps every
// lowercased canonical name and alias to its position. Both are written
// only during package init and read-only afterwards, so no locking is
// needed.
var (
	entries []Entry
	index   = make(map[string]int)
)

// Register adds a model family to the registry. The canonical name is
// taken from m.Model.Name(); names and aliases are case-insensitive and
// must be unique across the registry. Register is intended to run from
// package init (this file's); it is exported so future families
// (neural-network predictors, extended-exponential damage models) can
// live in their own file and self-register.
func Register(e Entry) error {
	if e.Model == nil {
		return fmt.Errorf("registry: entry %q has a nil model", e.Name)
	}
	if e.Name != e.Model.Name() {
		return fmt.Errorf("registry: entry name %q differs from model name %q", e.Name, e.Model.Name())
	}
	if e.Family != FamilyBathtub && e.Family != FamilyMixture {
		return fmt.Errorf("registry: entry %q has unknown family %q", e.Name, e.Family)
	}
	for _, key := range append([]string{e.Name}, e.Aliases...) {
		k := strings.ToLower(strings.TrimSpace(key))
		if k == "" {
			return fmt.Errorf("registry: entry %q has an empty name or alias", e.Name)
		}
		if prev, dup := index[k]; dup {
			return fmt.Errorf("registry: name %q already registered by %q", key, entries[prev].Name)
		}
	}
	e.ParamNames = e.Model.ParamNames()
	e.Caps = capabilitiesOf(e.Model)
	entries = append(entries, e)
	at := len(entries) - 1
	index[strings.ToLower(e.Name)] = at
	for _, a := range e.Aliases {
		index[strings.ToLower(strings.TrimSpace(a))] = at
	}
	return nil
}

// capabilitiesOf derives the capability flags from the optional
// interfaces the model implements.
func capabilitiesOf(m core.Model) Capabilities {
	var c Capabilities
	_, c.ClosedFormArea = m.(core.AreaModel)
	_, c.ClosedFormRecovery = m.(core.RecoveryModel)
	_, c.ClosedFormMinimum = m.(core.MinimumModel)
	c.AnalyticJacobian = core.HasAnalyticJacobian(m)
	return c
}

func mustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err) // static registrations cannot fail
	}
}

func init() {
	mustRegister(Entry{
		Name:        "quadratic",
		Aliases:     []string{"quad"},
		Family:      FamilyBathtub,
		Description: "Quadratic bathtub hazard P(t) = α + βt + γt² (Eq. 1).",
		Model:       core.QuadraticModel{},
		// Last resort of the degradation chain: three parameters fit almost
		// any V-shaped series.
		FallbackRank: 3,
	})
	mustRegister(Entry{
		Name:        "competing-risks",
		Aliases:     []string{"competing", "cr", "hjorth"},
		Family:      FamilyBathtub,
		Description: "Competing-risks (Hjorth) bathtub hazard P(t) = 2γt + α/(1+βt) (Eq. 4).",
		Model:       core.CompetingRisksModel{},
	})
	mustRegister(Entry{
		Name:        "exp-bathtub",
		Aliases:     []string{"expbathtub", "exponential-bathtub"},
		Family:      FamilyBathtub,
		Description: "Four-parameter exponential bathtub P(t) = α·e^{−βt} + γ·(e^{δt} − 1) (extension).",
		Model:       core.ExpBathtubModel{},
	})
	// The paper's four mixture combinations with a₂(t) = β·ln t, in the
	// column order of Table III. Ranks 1 and 2 head the degradation chain
	// (most expressive first); see core.DefaultFallbacks.
	mixtures := map[string]struct {
		aliases []string
		rank    int
		desc    string
	}{
		"exp-exp":         {nil, 2, "Mixture: exponential degradation, exponential recovery (Eq. 7)."},
		"weibull-exp":     {[]string{"wei-exp"}, 1, "Mixture: Weibull degradation, exponential recovery (Eq. 7)."},
		"exp-weibull":     {[]string{"exp-wei"}, 0, "Mixture: exponential degradation, Weibull recovery (Eq. 7)."},
		"weibull-weibull": {[]string{"wei-wei"}, 0, "Mixture: Weibull degradation, Weibull recovery (Eq. 7)."},
	}
	for _, m := range core.StandardMixtures() {
		meta, ok := mixtures[m.Name()]
		if !ok {
			panic("registry: unexpected standard mixture " + m.Name())
		}
		mustRegister(Entry{
			Name:         m.Name(),
			Aliases:      meta.aliases,
			Family:       FamilyMixture,
			Description:  meta.desc,
			Model:        m,
			FallbackRank: meta.rank,
		})
	}
}

// Lookup resolves a canonical name or alias, case-insensitively, to its
// registry entry.
func Lookup(name string) (Entry, error) {
	k := strings.ToLower(strings.TrimSpace(name))
	if k == "" {
		return Entry{}, fmt.Errorf("registry: model name required (have %v)", Names())
	}
	at, ok := index[k]
	if !ok {
		return Entry{}, fmt.Errorf("registry: unknown model %q (have %v)", name, Names())
	}
	return entries[at], nil
}

// MustLookup is Lookup for statically known names; it panics on a miss.
func MustLookup(name string) Entry {
	e, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return e
}

// Names returns the canonical model names in registration order — the
// stable public order used by catalogs and selection candidates.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// All returns every registry entry in registration order.
func All() []Entry {
	return append([]Entry(nil), entries...)
}

// Models returns every registered model in registration order, for
// callers (selection, examples) that fit the whole menu.
func Models() []core.Model {
	out := make([]core.Model, len(entries))
	for i, e := range entries {
		out[i] = e.Model
	}
	return out
}

// Mixtures returns the registered mixture models in registration order —
// the Table III column order — typed for callers (the experiment tables,
// mixture-specific benches) that need the concrete mixture API.
func Mixtures() []*core.MixtureModel {
	var out []*core.MixtureModel
	for _, e := range entries {
		if m, ok := e.Model.(*core.MixtureModel); ok {
			out = append(out, m)
		}
	}
	return out
}

// ByFamily returns the entries of one family in registration order.
func ByFamily(family string) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Family == family {
			out = append(out, e)
		}
	}
	return out
}

// FallbackChain returns the default degradation chain — every entry with
// a FallbackRank, ordered by rank — as models ready for
// core.FallbackPolicy.Fallbacks. It mirrors core.DefaultFallbacks (a
// registry test enforces the agreement); service layers use this form so
// the chain, like everything else, resolves through the registry.
func FallbackChain() []core.Model {
	ranked := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.FallbackRank > 0 {
			ranked = append(ranked, e)
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].FallbackRank < ranked[j].FallbackRank })
	out := make([]core.Model, len(ranked))
	for i, e := range ranked {
		out[i] = e.Model
	}
	return out
}
