package durable

// On-disk WAL record format. Every record is framed as
//
//	[4-byte little-endian uint32: payload length]
//	[4-byte little-endian uint32: CRC-32C (Castagnoli) of the payload]
//	[payload]
//
// and the payload is one type byte followed by the JSON encoding of the
// per-type struct below. The checksum covers the payload only: a frame
// whose stored CRC disagrees with its bytes — or whose length runs past
// the end of the file — is a torn tail, the normal signature of a crash
// mid-write. Recovery truncates the file at the last good record and
// keeps going; a torn tail is counted, never fatal.
//
// JSON keeps the records self-describing and debuggable (`xxd wal.log`
// is readable); the fixed binary frame keeps scanning allocation-light
// and makes corruption detection independent of the payload encoding.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"resilience/internal/stream"
)

// Record type bytes. Values are part of the on-disk format; never
// renumber.
const (
	recCreated byte = 1 // session created
	recObs     byte = 2 // one accepted observation
	recFit     byte = 3 // refit outcome (warm-start state)
	recClosed  byte = 4 // terminal transition; session must not recover
)

// frameHeaderLen is the fixed prefix before each payload.
const frameHeaderLen = 8

// maxRecordLen bounds a single record so a corrupt length field cannot
// make the scanner allocate gigabytes. Real records are well under 1 KiB
// except snapshots, which live in their own files.
const maxRecordLen = 16 << 20

// castagnoli is the CRC-32C table (the SSE4.2-accelerated polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// createdRec is the payload of a recCreated record.
type createdRec struct {
	ID     string               `json:"id"`
	Model  string               `json:"model"`
	Config stream.MonitorConfig `json:"config"`
	At     time.Time            `json:"at"`
}

// obsRec is the payload of a recObs record.
type obsRec struct {
	ID  string  `json:"id"`
	Seq uint64  `json:"seq"`
	T   float64 `json:"t"`
	V   float64 `json:"v"`
}

// fitRec is the payload of a recFit record.
type fitRec struct {
	ID  string             `json:"id"`
	Fit *stream.FitSummary `json:"fit"`
}

// closedRec is the payload of a recClosed record.
type closedRec struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

// encodeRecord frames one typed payload: header + checksummed bytes,
// ready to append.
func encodeRecord(typ byte, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("durable: encode record type %d: %w", typ, err)
	}
	payload := make([]byte, frameHeaderLen+1+len(body))
	payload[frameHeaderLen] = typ
	copy(payload[frameHeaderLen+1:], body)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(1+len(body)))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.Checksum(payload[frameHeaderLen:], castagnoli))
	return payload, nil
}

// errTorn reports any frame-level damage: short header, short payload,
// an insane length, or a checksum mismatch. The scanner maps all of them
// to "truncate here".
var errTorn = fmt.Errorf("durable: torn or corrupt record")

// readRecord reads one frame from r, returning the type byte and JSON
// body. io.EOF means a clean end of log; errTorn means the bytes from
// the current offset on are damaged.
func readRecord(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errTorn // short header: torn mid-frame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxRecordLen {
		return 0, nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, errTorn // length overruns the file: torn tail
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, nil, errTorn
	}
	return payload[0], payload[1:], nil
}
