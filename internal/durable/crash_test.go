package durable

// Crash-recovery chaos: a child process streams observations through a
// durable Manager and is SIGKILLed mid-stream — no shutdown hooks, no
// final snapshot, exactly what a crash looks like. The parent then
// recovers the directory in-process and proves the contract from
// ISSUE 6: every acknowledged observation is back, the phase machine is
// where the crashed process left it, the next refit warm-starts from the
// persisted parameters bit-identically, and a torn WAL tail is dropped
// and counted, never fatal.
//
// The child is this same test binary re-executed with DURABLE_CRASH_CHILD
// set; TestMain diverts into childMain before the test framework starts.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"resilience/internal/stream"
)

const (
	crashChildEnv = "DURABLE_CRASH_CHILD"
	crashDirEnv   = "DURABLE_CRASH_DIR"
	// crashSeriesN is the full series length the child tries to stream;
	// the parent kills it long before the end.
	crashSeriesN = 40
	// crashKillAfter is how many acknowledged observations the parent
	// waits for before sending SIGKILL.
	crashKillAfter = 23
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		childMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childMain is the process that gets killed: open the store, create one
// durable session, and stream the dip series one point at a time,
// acknowledging each durably-written observation on stdout.
func childMain() {
	dir := os.Getenv(crashDirEnv)
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: open:", err)
		os.Exit(1)
	}
	states, _, err := l.Recover()
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: recover:", err)
		os.Exit(1)
	}
	m := stream.NewManager(stream.Config{Store: l, SnapshotEvery: 5})
	if _, _, err := m.Restore(states); err != nil {
		fmt.Fprintln(os.Stderr, "child: restore:", err)
		os.Exit(1)
	}
	snap, err := m.Create("quadratic", stream.MonitorConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: create:", err)
		os.Exit(1)
	}
	fmt.Printf("ID %s\n", snap.ID)

	times, values := dipSeries(5, crashSeriesN, 0.05)
	for i := range times {
		if _, _, err := m.Observe(context.Background(), snap.ID,
			times[i:i+1], values[i:i+1]); err != nil {
			fmt.Fprintf(os.Stderr, "child: observe %d: %v\n", i, err)
			os.Exit(1)
		}
		// The Observe above returned, so with SyncAlways the observation
		// (and any refit) is on disk. Only now is it acknowledged.
		fmt.Printf("OBS %d\n", i+1)
	}
	select {} // wait for the kill
}

func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Watch the child's acknowledgement stream until enough observations
	// are durably down, then kill -9 — mid-stream, no warning.
	var sessID string
	acked := 0
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "ID "):
			sessID = strings.TrimPrefix(line, "ID ")
		case strings.HasPrefix(line, "OBS "):
			n, _ := strconv.Atoi(strings.TrimPrefix(line, "OBS "))
			acked = n
		}
		if acked >= crashKillAfter {
			break
		}
	}
	if sessID == "" || acked < crashKillAfter {
		t.Fatalf("child died early: session %q, %d acks (scan err %v)", sessID, acked, sc.Err())
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // expected: signal: killed

	// Simulate the worst-case crash signature on top: a torn final record
	// (the kill landing mid-append). Recovery must drop and count it.
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xff}); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	// Recover in-process, exactly as the restarted server would.
	l, states, st := openLog(t, dir, Options{Sync: SyncAlways})
	defer l.Close()
	if st.TornDropped != 1 {
		t.Errorf("torn tail drops = %d, want 1 (and never a boot failure)", st.TornDropped)
	}
	if len(states) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(states))
	}
	ps := states[0]
	if ps.ID != sessID {
		t.Fatalf("recovered session %q, want %q", ps.ID, sessID)
	}
	got := int(ps.Seq)
	if got < acked || got > crashSeriesN {
		t.Fatalf("recovered %d observations; child had %d acknowledged (max %d)",
			got, acked, crashSeriesN)
	}

	// Identical history: the recovered prefix must match the series the
	// child streamed, bit for bit.
	times, values := dipSeries(5, crashSeriesN, 0.05)
	if len(ps.Times) != got || len(ps.Values) != got {
		t.Fatalf("history skewed: seq %d, %d times, %d values", got, len(ps.Times), len(ps.Values))
	}
	for i := 0; i < got; i++ {
		if ps.Times[i] != times[i] || ps.Values[i] != values[i] {
			t.Fatalf("observation %d = (%v, %v), want (%v, %v)",
				i, ps.Times[i], ps.Values[i], times[i], values[i])
		}
	}

	// Resume the recovered session next to an uninterrupted reference
	// manager fed the same prefix: the phase machine and the warm-started
	// fits must be indistinguishable from a process that never died.
	recovered := stream.NewManager(stream.Config{})
	if _, _, err := recovered.Restore(states); err != nil {
		t.Fatal(err)
	}
	reference := stream.NewManager(stream.Config{})
	refSnap, err := reference.Create("quadratic", stream.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reference.Observe(context.Background(), refSnap.ID, times[:got], values[:got]); err != nil {
		t.Fatal(err)
	}
	compareSessions(t, "at recovery", recovered, sessID, reference, refSnap.ID)

	// Both keep observing the rest of the series.
	if got < crashSeriesN {
		if _, _, err := recovered.Observe(context.Background(), sessID, times[got:], values[got:]); err != nil {
			t.Fatalf("recovered session refused to resume: %v", err)
		}
		if _, _, err := reference.Observe(context.Background(), refSnap.ID, times[got:], values[got:]); err != nil {
			t.Fatal(err)
		}
		compareSessions(t, "after resuming", recovered, sessID, reference, refSnap.ID)
	}
}

// compareSessions asserts two sessions are in the same externally
// visible state: phase, history, and fit parameters (bit-identical).
func compareSessions(t *testing.T, when string, am *stream.Manager, aid string, bm *stream.Manager, bid string) {
	t.Helper()
	a, err := am.Snapshot(aid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bm.Snapshot(bid)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phase != b.Phase {
		t.Errorf("%s: phase %s, reference %s", when, a.Phase, b.Phase)
	}
	if a.Observations != b.Observations || a.HistoryLen != b.HistoryLen {
		t.Errorf("%s: history %d/%d, reference %d/%d",
			when, a.Observations, a.HistoryLen, b.Observations, b.HistoryLen)
	}
	if (a.LastFit == nil) != (b.LastFit == nil) {
		t.Fatalf("%s: fit presence %v vs %v", when, a.LastFit != nil, b.LastFit != nil)
	}
	if a.LastFit == nil {
		return
	}
	if a.LastFit.Model != b.LastFit.Model || a.LastFit.Seq != b.LastFit.Seq {
		t.Errorf("%s: fit %s@%d, reference %s@%d",
			when, a.LastFit.Model, a.LastFit.Seq, b.LastFit.Model, b.LastFit.Seq)
	}
	for i := range b.LastFit.Params {
		if a.LastFit.Params[i] != b.LastFit.Params[i] {
			t.Errorf("%s: param %d = %v, reference %v (want bit-identical)",
				when, i, a.LastFit.Params[i], b.LastFit.Params[i])
		}
	}
}
