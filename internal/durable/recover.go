package durable

// Boot-time recovery: snapshots first, then the WAL tail on top, then
// compaction. The result is exactly what the crashed process had
// acknowledged — every record whose append returned success is either in
// a snapshot or in the replayed tail.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"resilience/internal/stream"
	"resilience/internal/telemetry"
)

// Stats summarizes one recovery pass.
type Stats struct {
	// Sessions is how many live sessions were reconstructed.
	Sessions int
	// SnapshotsLoaded counts snapshot files read successfully;
	// SnapshotsDropped counts malformed ones skipped.
	SnapshotsLoaded  int
	SnapshotsDropped int
	// RecordsReplayed counts WAL records applied on top of snapshots.
	RecordsReplayed int
	// TornDropped counts damaged tail records truncated away (0 or 1 per
	// boot in practice: a crash tears at most the record being written).
	TornDropped int
	// Duration is the wall time of the pass.
	Duration time.Duration
}

// sessState accumulates one session's recovered state during replay.
type sessState struct {
	ps     stream.PersistedSession
	closed bool
}

// Recover loads the data directory — snapshots, then the WAL — and
// returns the sessions that should be resurrected, ordered by last
// activity (oldest first, the order stream.Manager.Restore expects).
//
// Damage tolerance is asymmetric by design: a torn or corrupt WAL tail
// is truncated at the last good record and counted (a crash mid-append
// is the expected failure, not an error), and a malformed snapshot file
// is skipped the same way. Only environmental failures — an unreadable
// directory, a failing disk — return an error.
//
// After the scan the directory is compacted: every live session gets a
// fresh snapshot, dead sessions' snapshot files are removed, and the WAL
// is truncated to empty, so replay cost does not accumulate across
// restarts. Store calls buffered while recovery ran are appended last.
// Recover must be called exactly once, before the Log's first fsync
// deadline matters and before Manager.Restore.
func (l *Log) Recover() ([]stream.PersistedSession, Stats, error) {
	start := time.Now()
	var st Stats

	// Recovery runs before any request exists, so it mints its own trace
	// and records it into the trace store: the boot replay is exactly the
	// kind of rare, potentially slow work an operator later asks "what
	// took so long?" about.
	trace := &telemetry.Trace{ID: telemetry.NewRequestID(), TraceID: telemetry.NewTraceID()}
	ctx, root := telemetry.StartSpanCtx(telemetry.WithTrace(context.Background(), trace), "boot.replay")

	states := make(map[string]*sessState)
	snapSpan := telemetry.StartSpan(ctx, "boot.snapshots")
	err := l.loadSnapshots(states, &st)
	snapSpan.EndErr(err, telemetry.Int("loaded", st.SnapshotsLoaded), telemetry.Int("dropped", st.SnapshotsDropped))
	if err != nil {
		return nil, st, err
	}
	walSpan := telemetry.StartSpan(ctx, "boot.wal_replay")
	err = l.replayWAL(states, &st)
	walSpan.EndErr(err, telemetry.Int("records", st.RecordsReplayed), telemetry.Int("torn_dropped", st.TornDropped))
	if err != nil {
		return nil, st, err
	}

	live := make([]stream.PersistedSession, 0, len(states))
	for _, s := range states {
		if s.closed {
			continue
		}
		live = append(live, s.ps)
	}
	sort.Slice(live, func(i, j int) bool {
		return live[i].LastActive.Before(live[j].LastActive)
	})
	st.Sessions = len(live)

	if err := l.compactAfterRecovery(ctx, states, live); err != nil {
		return nil, st, err
	}

	st.Duration = time.Since(start)
	root.End(telemetry.Int("sessions", st.Sessions), telemetry.Int("wal_records", st.RecordsReplayed))
	telemetry.DefaultTraceStore.Record(&telemetry.TraceRecord{
		TraceID:   trace.TraceID,
		RequestID: trace.ID,
		Route:     "boot.replay",
		Method:    "BOOT",
		Start:     start,
		Duration:  st.Duration,
		Spans:     trace.Spans(),
	})
	metrics.replayDuration.Set(st.Duration.Seconds())
	metrics.replayed.Add(uint64(st.RecordsReplayed))
	metrics.tornDrops.Add(uint64(st.TornDropped))
	l.opts.Logger.Info("durable: recovery complete",
		"sessions", st.Sessions,
		"snapshots", st.SnapshotsLoaded,
		"wal_records", st.RecordsReplayed,
		"torn_dropped", st.TornDropped,
		"duration", st.Duration,
		"trace_id", trace.TraceID)
	return live, st, nil
}

// loadSnapshots reads every snap-*.json into states.
func (l *Log) loadSnapshots(states map[string]*sessState, st *Stats) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("durable: read data dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		ps, err := readSnapshotFile(filepath.Join(l.dir, name))
		if err != nil {
			// A half-written snapshot (crash between create and rename never
			// leaves one, but disks bit-rot) costs that session's snapshot
			// base, not the boot. Its WAL records may still recover it.
			l.opts.Logger.Warn("durable: dropping unreadable snapshot", "file", name, "err", err)
			st.SnapshotsDropped++
			metrics.snapshotLoadErrors.Inc()
			continue
		}
		st.SnapshotsLoaded++
		states[ps.ID] = &sessState{ps: *ps}
	}
	return nil
}

// replayWAL scans the WAL, applying each record on top of the snapshot
// bases, and truncates the file at the first damaged frame.
func (l *Log) replayWAL(states map[string]*sessState, st *Stats) error {
	l.mu.Lock()
	defer l.mu.Unlock()

	if _, err := l.f.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: seek wal: %w", err)
	}
	r := bufio.NewReader(l.f)
	var offset int64 // end of the last good record
	for {
		typ, body, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTorn) {
			// The tail from offset on is damaged — the crash tore the record
			// being appended. Cut it off and carry on; the record was never
			// acknowledged as durable.
			st.TornDropped++
			l.opts.Logger.Warn("durable: truncating torn WAL tail", "offset", offset)
			if terr := l.f.Truncate(offset); terr != nil {
				return fmt.Errorf("durable: truncate torn tail: %w", terr)
			}
			break
		}
		if err != nil {
			return fmt.Errorf("durable: scan wal: %w", err)
		}
		offset += int64(frameHeaderLen + 1 + len(body))
		l.applyRecord(states, typ, body, st)
		st.RecordsReplayed++
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("durable: seek wal end: %w", err)
	}
	return nil
}

// applyRecord folds one WAL record into the recovered states. Records
// that fail to decode or reference impossible state are skipped with a
// log line — one bad record must not cost the boot.
func (l *Log) applyRecord(states map[string]*sessState, typ byte, body []byte, st *Stats) {
	skip := func(what string, err error) {
		l.opts.Logger.Warn("durable: skipping unusable WAL record", "type", what, "err", err)
	}
	switch typ {
	case recCreated:
		var rec createdRec
		if err := json.Unmarshal(body, &rec); err != nil {
			skip("created", err)
			return
		}
		if prev, ok := states[rec.ID]; ok && !prev.closed && prev.ps.CreatedAt.Equal(rec.At) {
			// The same incarnation this state already describes (its creation
			// record outlived a snapshot); nothing to do.
			return
		}
		// First sight of the ID, or a new incarnation after close/eviction:
		// start fresh. A snapshot of the old incarnation is superseded.
		states[rec.ID] = &sessState{ps: stream.PersistedSession{
			ID:         rec.ID,
			Model:      rec.Model,
			Config:     rec.Config,
			CreatedAt:  rec.At,
			LastActive: rec.At,
		}}
	case recObs:
		var rec obsRec
		if err := json.Unmarshal(body, &rec); err != nil {
			skip("observation", err)
			return
		}
		s, ok := states[rec.ID]
		if !ok || s.closed {
			return // observation for an unknown or already-terminal session
		}
		if rec.Seq <= s.ps.Seq {
			return // superseded by the snapshot base
		}
		s.ps.Seq = rec.Seq
		s.ps.Times = append(s.ps.Times, rec.T)
		s.ps.Values = append(s.ps.Values, rec.V)
		// Observation records carry no wall clock; a session with WAL
		// activity past its snapshot was live right up to the crash, so
		// recovery time is the closest honest LastActive (and keeps the TTL
		// from retiring a session that died mid-stream).
		s.ps.LastActive = time.Now()
	case recFit:
		var rec fitRec
		if err := json.Unmarshal(body, &rec); err != nil {
			skip("fit", err)
			return
		}
		if s, ok := states[rec.ID]; ok && !s.closed && rec.Fit != nil {
			if s.ps.LastFit == nil || rec.Fit.Seq >= s.ps.LastFit.Seq {
				s.ps.LastFit = rec.Fit
			}
		}
	case recClosed:
		var rec closedRec
		if err := json.Unmarshal(body, &rec); err != nil {
			skip("closed", err)
			return
		}
		if s, ok := states[rec.ID]; ok {
			s.closed = true
		}
	default:
		skip(fmt.Sprintf("unknown(%d)", typ), nil)
	}
}

// compactAfterRecovery rewrites the directory to its minimal form —
// one fresh snapshot per live session, no stale snapshot files, an empty
// WAL — then drains the Store calls buffered during replay and opens the
// Log for normal appends.
func (l *Log) compactAfterRecovery(ctx context.Context, states map[string]*sessState, live []stream.PersistedSession) error {
	l.mu.Lock()
	defer l.mu.Unlock()

	ctx, compact := telemetry.StartSpanCtx(ctx, "boot.compact")
	defer func() {
		compact.End(telemetry.Int("sessions", len(live)))
	}()
	for i := range live {
		// One span per resurrected session, so a slow boot is attributable
		// to the specific session whose snapshot rewrite dominated.
		s := telemetry.StartSpan(ctx, "boot.session")
		err := writeSnapshotFile(l.dir, &live[i])
		s.EndErr(err, telemetry.Str("session", live[i].ID), telemetry.Int("points", len(live[i].Times)))
		if err != nil {
			return err
		}
		metrics.snapshots.Inc()
	}
	for id, s := range states {
		if s.closed {
			l.removeSnapshotLocked(id)
		}
	}
	if err := l.truncateWALLocked(); err != nil {
		return fmt.Errorf("durable: compact wal: %w", err)
	}
	metrics.compactions.Inc()

	l.recovered = true
	pending := l.pending
	l.pending = nil
	for _, op := range pending {
		if op.snap != nil {
			if err := l.writeSnapshotLocked(op.snap); err != nil {
				l.opts.Logger.Warn("durable: buffered snapshot failed", "session", op.id, "err", err)
			}
			continue
		}
		if err := l.appendLocked(op.id, op.frame); err != nil {
			l.opts.Logger.Warn("durable: buffered append failed", "session", op.id, "err", err)
		}
	}
	return nil
}

// writeSnapshotFile persists one session snapshot atomically: temp file,
// fsync, rename.
func writeSnapshotFile(dir string, ps *stream.PersistedSession) error {
	data, err := json.Marshal(ps)
	if err != nil {
		return fmt.Errorf("durable: encode snapshot %s: %w", ps.ID, err)
	}
	path := snapPath(dir, ps.ID)
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("durable: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: write snapshot %s: %w", ps.ID, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: sync snapshot %s: %w", ps.ID, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: close snapshot %s: %w", ps.ID, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: publish snapshot %s: %w", ps.ID, err)
	}
	return nil
}

// readSnapshotFile loads one snapshot, validating the invariants replay
// depends on.
func readSnapshotFile(path string) (*stream.PersistedSession, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ps stream.PersistedSession
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, err
	}
	if ps.ID == "" || ps.Model == "" {
		return nil, fmt.Errorf("snapshot missing identity")
	}
	if len(ps.Times) != len(ps.Values) {
		return nil, fmt.Errorf("snapshot history skewed: %d times, %d values", len(ps.Times), len(ps.Values))
	}
	return &ps, nil
}
