package durable

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/stream"
)

// openLog opens a Log in dir and completes recovery, returning the
// recovered states.
func openLog(t *testing.T, dir string, opts Options) (*Log, []stream.PersistedSession, Stats) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	states, st, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return l, states, st
}

// dipSeries builds lead nominal points followed by a symmetric quadratic
// dip of the given depth — enough to walk a tracker through onset,
// fitting, and recovery.
func dipSeries(lead, n int, depth float64) (times, values []float64) {
	half := float64(n-lead) / 2
	for i := 0; i < n; i++ {
		times = append(times, float64(i))
		if i < lead {
			values = append(values, 1.0)
			continue
		}
		x := float64(i-lead) - half
		values = append(values, 1.0-depth*(1.0-(x/half)*(x/half)))
	}
	return times, values
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{
		"always": SyncAlways, "": SyncAlways, "Interval": SyncInterval, "none": SyncNone,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, states, _ := openLog(t, dir, Options{Sync: SyncNone})
	if len(states) != 0 {
		t.Fatalf("fresh dir recovered %d sessions", len(states))
	}
	at := time.Now().Round(0)
	if err := l.SessionCreated("s-a", "quadratic", stream.MonitorConfig{MinFitPoints: 8}, at); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.PointObserved("s-a", uint64(i), float64(i-1), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	fit := &stream.FitSummary{Seq: 3, Model: "quadratic", Params: []float64{1, 2, 3}, SSE: 0.5}
	if err := l.FitUpdated("s-a", fit); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, states, st := openLog(t, dir, Options{})
	defer l2.Close()
	if st.RecordsReplayed != 5 {
		t.Errorf("replayed %d records, want 5", st.RecordsReplayed)
	}
	if len(states) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(states))
	}
	ps := states[0]
	if ps.ID != "s-a" || ps.Model != "quadratic" || ps.Config.MinFitPoints != 8 {
		t.Errorf("identity/config lost: %+v", ps)
	}
	if !ps.CreatedAt.Equal(at) {
		t.Errorf("created_at = %v, want %v", ps.CreatedAt, at)
	}
	if ps.Seq != 3 || len(ps.Times) != 3 || ps.Times[2] != 2 {
		t.Errorf("history lost: seq %d times %v", ps.Seq, ps.Times)
	}
	if ps.LastFit == nil || ps.LastFit.Seq != 3 || ps.LastFit.Params[1] != 2 {
		t.Errorf("fit lost: %+v", ps.LastFit)
	}
}

func TestSnapshotSupersedesWALRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	at := time.Now()
	check(t, l.SessionCreated("s-b", "quadratic", stream.MonitorConfig{}, at))
	for i := 1; i <= 3; i++ {
		check(t, l.PointObserved("s-b", uint64(i), float64(i-1), 1.0))
	}
	check(t, l.SessionSnapshot(&stream.PersistedSession{
		ID: "s-b", Model: "quadratic", CreatedAt: at, LastActive: at,
		Seq: 3, Times: []float64{0, 1, 2}, Values: []float64{1, 1, 1},
	}))
	// Two more observations after the snapshot; replay must apply exactly
	// these on top of the snapshot base, not double-apply 1..3.
	check(t, l.PointObserved("s-b", 4, 3, 0.9))
	check(t, l.PointObserved("s-b", 5, 4, 0.8))
	check(t, l.Close())

	l2, states, _ := openLog(t, dir, Options{})
	defer l2.Close()
	if len(states) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(states))
	}
	ps := states[0]
	if ps.Seq != 5 || len(ps.Times) != 5 {
		t.Fatalf("seq %d, %d points; want 5, 5", ps.Seq, len(ps.Times))
	}
	if ps.Values[4] != 0.8 {
		t.Errorf("post-snapshot tail wrong: %v", ps.Values)
	}
}

func TestClosedSessionIsNotRecovered(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	at := time.Now()
	check(t, l.SessionCreated("s-c", "quadratic", stream.MonitorConfig{}, at))
	check(t, l.SessionSnapshot(&stream.PersistedSession{
		ID: "s-c", Model: "quadratic", CreatedAt: at, LastActive: at,
		Seq: 1, Times: []float64{0}, Values: []float64{1},
	}))
	check(t, l.SessionClosed("s-c", "closed"))
	if _, err := os.Stat(snapPath(dir, "s-c")); !os.IsNotExist(err) {
		t.Error("snapshot file survived SessionClosed")
	}
	check(t, l.Close())

	l2, states, _ := openLog(t, dir, Options{})
	defer l2.Close()
	if len(states) != 0 {
		t.Fatalf("closed session resurrected: %+v", states)
	}
}

func TestClosedThenRecreatedIDIsNewIncarnation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	t1 := time.Now().Add(-time.Minute).Round(0)
	t2 := time.Now().Round(0)
	check(t, l.SessionCreated("s-d", "quadratic", stream.MonitorConfig{}, t1))
	check(t, l.PointObserved("s-d", 1, 0, 0.5))
	check(t, l.SessionClosed("s-d", "evicted:lru"))
	check(t, l.SessionCreated("s-d", "quadratic", stream.MonitorConfig{}, t2))
	check(t, l.PointObserved("s-d", 1, 0, 0.9))
	check(t, l.Close())

	l2, states, _ := openLog(t, dir, Options{})
	defer l2.Close()
	if len(states) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(states))
	}
	ps := states[0]
	if !ps.CreatedAt.Equal(t2) {
		t.Errorf("recovered the dead incarnation: created %v, want %v", ps.CreatedAt, t2)
	}
	if len(ps.Values) != 1 || ps.Values[0] != 0.9 {
		t.Errorf("stale incarnation state leaked: %v", ps.Values)
	}
}

func TestTornTailIsTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	at := time.Now()
	check(t, l.SessionCreated("s-e", "quadratic", stream.MonitorConfig{}, at))
	check(t, l.PointObserved("s-e", 1, 0, 1.0))
	check(t, l.PointObserved("s-e", 2, 1, 0.9))
	// The next append crashes mid-write: half a frame reaches the file.
	if err := faultinject.Arm("wal-torn-tail", "tear"); err != nil {
		t.Fatal(err)
	}
	err := l.PointObserved("s-e", 3, 2, 0.8)
	faultinject.Disarm("wal-torn-tail")
	if err != nil {
		t.Fatalf("torn write surfaced an error: %v", err)
	}
	check(t, l.Close())

	l2, states, st := openLog(t, dir, Options{})
	defer l2.Close()
	if st.TornDropped != 1 {
		t.Errorf("torn drops = %d, want 1", st.TornDropped)
	}
	if len(states) != 1 || states[0].Seq != 2 {
		t.Fatalf("want the 2 acknowledged observations back, got %+v", states)
	}
	// Compaction ran: the WAL is empty again, the state lives in its
	// snapshot, and a third boot sees no damage.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Errorf("WAL not compacted after recovery: %v, %v", fi, err)
	}
	check(t, l2.Close())
	l3, states3, st3 := openLog(t, dir, Options{})
	defer l3.Close()
	if st3.TornDropped != 0 || len(states3) != 1 || states3[0].Seq != 2 {
		t.Errorf("second recovery diverged: %+v, %+v", st3, states3)
	}
}

func TestTrailingGarbageIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	check(t, l.SessionCreated("s-f", "quadratic", stream.MonitorConfig{}, time.Now()))
	check(t, l.PointObserved("s-f", 1, 0, 1.0))
	check(t, l.Close())
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, states, st := openLog(t, dir, Options{})
	defer l2.Close()
	if st.TornDropped != 1 || len(states) != 1 || states[0].Seq != 1 {
		t.Errorf("garbage tail handled wrong: %+v, %+v", st, states)
	}
}

func TestWriteErrFaultSurfacesToCaller(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	defer l.Close()
	if err := faultinject.Arm("wal-write-err", "err"); err != nil {
		t.Fatal(err)
	}
	errObs := l.PointObserved("s-g", 1, 0, 1.0)
	errSnap := l.SessionSnapshot(&stream.PersistedSession{ID: "s-g", Model: "quadratic"})
	faultinject.Clear()
	if errObs == nil || errSnap == nil {
		t.Errorf("armed wal-write-err not surfaced: obs %v, snap %v", errObs, errSnap)
	}
	// The injected error is transient, not sticky: appends work again.
	if err := l.PointObserved("s-g", 1, 0, 1.0); err != nil {
		t.Errorf("append after disarm: %v", err)
	}
}

func TestAppendsBeforeRecoverAreBuffered(t *testing.T) {
	dir := t.TempDir()
	// Seed a prior run's state.
	l, _, _ := openLog(t, dir, Options{Sync: SyncNone})
	at := time.Now()
	check(t, l.SessionCreated("s-old", "quadratic", stream.MonitorConfig{}, at))
	check(t, l.PointObserved("s-old", 1, 0, 1.0))
	check(t, l.Close())

	// Reopen; the listener is "up" before Recover, and a new session
	// arrives during the replay window.
	l2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	check(t, l2.SessionCreated("s-new", "quadratic", stream.MonitorConfig{}, time.Now()))
	check(t, l2.PointObserved("s-new", 1, 0, 0.7))
	states, _, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].ID != "s-old" {
		t.Fatalf("replay window writes leaked into recovery: %+v", states)
	}
	check(t, l2.Close())

	// The buffered appends landed after compaction: the next boot sees
	// both sessions.
	l3, states3, _ := openLog(t, dir, Options{})
	defer l3.Close()
	ids := map[string]uint64{}
	for _, ps := range states3 {
		ids[ps.ID] = ps.Seq
	}
	if ids["s-old"] != 1 || ids["s-new"] != 1 {
		t.Errorf("lost sessions across the replay window: %v", ids)
	}
}

func TestGracefulRestartThroughManager(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	l, states, _ := openLog(t, dir, Options{Sync: SyncNone})
	if len(states) != 0 {
		t.Fatal("fresh dir not empty")
	}
	m := stream.NewManager(stream.Config{Store: l, SnapshotEvery: 7})
	if _, _, err := m.Restore(states); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Create("quadratic", stream.MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	times, values := dipSeries(5, 30, 0.05)
	ups, _, err := m.Observe(ctx, snap.ID, times, values)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Shutdown order mirrors the server: drain the manager (which writes
	// final snapshots), then flush and close the log.
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	check(t, l.Close())

	l2, states2, _ := openLog(t, dir, Options{})
	defer l2.Close()
	m2 := stream.NewManager(stream.Config{Store: l2})
	restored, dropped, err := m2.Restore(states2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 || dropped != 0 {
		t.Fatalf("Restore = (%d, %d), want (1, 0)", restored, dropped)
	}
	got, err := m2.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != want.Phase || got.Observations != want.Observations || got.HistoryLen != want.HistoryLen {
		t.Errorf("recovered %s/%d/%d, want %s/%d/%d",
			got.Phase, got.Observations, got.HistoryLen,
			want.Phase, want.Observations, want.HistoryLen)
	}
	if want.LastFit != nil {
		if got.LastFit == nil || got.LastFit.Seq != want.LastFit.Seq {
			t.Fatalf("fit state lost: %+v vs %+v", got.LastFit, want.LastFit)
		}
		for i, p := range want.LastFit.Params {
			if got.LastFit.Params[i] != p {
				t.Errorf("param %d = %g, want %g (must be bit-identical)", i, got.LastFit.Params[i], p)
			}
		}
	}
	if len(ups) != 30 {
		t.Fatalf("sanity: %d updates", len(ups))
	}
	// And the restored session keeps going.
	more, _, err := m2.Observe(ctx, snap.ID, []float64{30}, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if more[0].Seq != 31 {
		t.Errorf("post-restart seq = %d, want 31", more[0].Seq)
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
