// Package durable persists streaming sessions across process crashes.
//
// A Log owns one data directory holding a write-ahead log (wal.log) of
// session lifecycle records plus one JSON snapshot file per session
// (snap-<id>.json). The Log implements stream.Store, so wiring it into
// stream.Config makes every created session, accepted observation, refit
// outcome, and terminal transition durable; periodic snapshots supersede
// a session's earlier WAL records so boot-time replay stays bounded no
// matter how long the process ran.
//
// Recovery (Recover) is crash-first: it loads the snapshots, replays the
// WAL tail on top of them, truncates a torn final record (the normal
// signature of a crash mid-write — counted, logged, never fatal), and
// compacts the directory down to one fresh snapshot per live session and
// an empty WAL. The recovered states feed stream.Manager.Restore, which
// resurrects each session with its exact history, phase, and warm-start
// fit.
//
// Durability is tunable per deployment through the fsync policy:
// SyncAlways fsyncs after every append (power-loss safe, slowest),
// SyncInterval batches fsyncs on a timer (bounded loss window), SyncNone
// leaves syncing to the OS (crash-of-process safe — the buffered writer
// is flushed to the kernel on every append regardless, so a SIGKILL
// loses nothing; only a machine-level failure can).
package durable

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"resilience/internal/faultinject"
	"resilience/internal/stream"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

// Sync policies.
const (
	// SyncAlways fsyncs after every appended record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.SyncInterval) when records
	// were appended since the last sync.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS writes back on its own
	// schedule. Appends still reach the kernel immediately.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag vocabulary onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("durable: unknown sync policy %q (want always, interval, or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a Log. The zero value fsyncs every append.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the timer period under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// CompactThreshold is how many superseded WAL records accumulate
	// before the Log tries to truncate (default 4096; negative disables
	// inline compaction — recovery still compacts at boot).
	CompactThreshold int
	// Logger receives recovery and damage reports (default slog.Default).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.CompactThreshold == 0 {
		o.CompactThreshold = 4096
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// walName is the WAL file inside the data directory.
const walName = "wal.log"

// Log is a durable session store: a WAL plus per-session snapshots in
// one directory. It is safe for concurrent use. Appends arriving before
// Recover completes are buffered and land after the recovered tail, so
// the server may open its listener while replay runs.
type Log struct {
	dir  string
	opts Options

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	err  error // first unrecoverable write error; sticky
	done bool  // Close ran

	recovered bool
	pending   []pendingOp // ops buffered until Recover completes

	// walRecs counts records in the WAL; unsnapped counts, per session,
	// the WAL records a snapshot has not yet superseded. Their difference
	// is garbage, and when every live record is snapshot-covered the WAL
	// can truncate to nothing.
	walRecs   int
	unsnapped map[string]int

	dirty  bool          // records appended since the last fsync
	stopCh chan struct{} // stops the SyncInterval flusher
	wg     sync.WaitGroup
}

// pendingOp is one Store call buffered during the replay window.
type pendingOp struct {
	frame []byte                   // WAL append (nil for snapshots)
	id    string                   // session the frame belongs to
	snap  *stream.PersistedSession // snapshot write
}

// Open creates (or reopens) the data directory and its WAL. The returned
// Log buffers Store calls until Recover is called; call Close on
// shutdown after draining the stream manager.
func Open(dir string, opts Options) (*Log, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: data directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create data dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	l := &Log{
		dir:       dir,
		opts:      opts.withDefaults(),
		f:         f,
		w:         bufio.NewWriter(f),
		unsnapped: make(map[string]int),
		stopCh:    make(chan struct{}),
	}
	currentDir.Store(dir)
	if l.opts.Sync == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// syncLoop batches fsyncs under the SyncInterval policy.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.done {
				l.fsyncLocked()
			}
			l.mu.Unlock()
		case <-l.stopCh:
			return
		}
	}
}

// fsyncLocked flushes the buffered writer and syncs the WAL; caller
// holds l.mu. Failures become the Log's sticky error.
func (l *Log) fsyncLocked() {
	if err := l.w.Flush(); err != nil {
		l.setErrLocked(err)
		return
	}
	start := time.Now()
	faultinject.Sleep(context.Background(), "wal-fsync-slow")
	if err := l.f.Sync(); err != nil {
		l.setErrLocked(err)
		return
	}
	l.dirty = false
	metrics.fsyncs.Inc()
	metrics.fsyncDuration.Observe(time.Since(start).Seconds())
}

// setErrLocked records the first unrecoverable write error. Later
// appends keep failing fast with it; the stream manager counts those
// failures and keeps serving from memory.
func (l *Log) setErrLocked(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("durable: wal write: %w", err)
		l.opts.Logger.Error("durable: WAL degraded; sessions no longer crash-safe", "err", err)
	}
}

// append writes one framed record, honoring the replay buffer and the
// fsync policy. The bufio flush happens on EVERY append regardless of
// policy, so a record acknowledged here survives a SIGKILL — the sync
// policy only governs the machine-failure window.
func (l *Log) append(id string, typ byte, v any) error {
	if err := faultinject.Error("wal-write-err"); err != nil {
		return err
	}
	frame, err := encodeRecord(typ, v)
	if err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return fmt.Errorf("durable: log closed")
	}
	if !l.recovered {
		l.pending = append(l.pending, pendingOp{frame: frame, id: id})
		return nil
	}
	return l.appendLocked(id, frame)
}

// appendLocked writes one already-framed record; caller holds l.mu.
func (l *Log) appendLocked(id string, frame []byte) error {
	if l.err != nil {
		return l.err
	}
	if faultinject.Torn("wal-torn-tail") {
		// Simulate a crash mid-write: half the frame reaches the disk and
		// the process is gone before the rest does. The record was NOT
		// durably written, so this append still reports success to the
		// caller exactly as a real pre-crash append would have.
		_, _ = l.w.Write(frame[:frameHeaderLen+(len(frame)-frameHeaderLen)/2])
		_ = l.w.Flush()
		return nil
	}
	if _, err := l.w.Write(frame); err != nil {
		l.setErrLocked(err)
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.setErrLocked(err)
		return l.err
	}
	l.walRecs++
	l.unsnapped[id]++
	metrics.written.Inc()
	metrics.walRecords.Set(float64(l.walRecs))
	if l.opts.Sync == SyncAlways {
		l.fsyncLocked()
	} else {
		l.dirty = true
	}
	return l.err
}

// Close flushes and fsyncs the WAL and releases the directory. Call
// after stream.Manager.Shutdown has drained (so the final session
// snapshots are already written) and before the process exits.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return nil
	}
	l.done = true
	close(l.stopCh)
	l.fsyncLocked()
	err := l.err
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

// --- stream.Store implementation ---------------------------------------

// SessionCreated appends a creation record.
func (l *Log) SessionCreated(id, model string, cfg stream.MonitorConfig, at time.Time) error {
	return l.append(id, recCreated, createdRec{ID: id, Model: model, Config: cfg, At: at})
}

// PointObserved appends one observation record.
func (l *Log) PointObserved(id string, seq uint64, t, v float64) error {
	return l.append(id, recObs, obsRec{ID: id, Seq: seq, T: t, V: v})
}

// FitUpdated appends a refit record carrying the warm-start state.
func (l *Log) FitUpdated(id string, fit *stream.FitSummary) error {
	return l.append(id, recFit, fitRec{ID: id, Fit: fit})
}

// SessionClosed appends a terminal record and removes the session's
// snapshot file; recovery will never resurrect the ID.
func (l *Log) SessionClosed(id, reason string) error {
	err := l.append(id, recClosed, closedRec{ID: id, Reason: reason})
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.recovered {
		return err
	}
	// The closed record itself is garbage the moment it is durable, as is
	// everything else the session ever logged.
	delete(l.unsnapped, id)
	l.removeSnapshotLocked(id)
	l.maybeCompactLocked()
	return err
}

// SessionSnapshot writes the session's whole state to its snapshot file
// (atomically, via rename), superseding its WAL records.
func (l *Log) SessionSnapshot(ps *stream.PersistedSession) error {
	if err := faultinject.Error("wal-write-err"); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return fmt.Errorf("durable: log closed")
	}
	if !l.recovered {
		l.pending = append(l.pending, pendingOp{id: ps.ID, snap: ps})
		return nil
	}
	return l.writeSnapshotLocked(ps)
}

// writeSnapshotLocked persists one snapshot file and retires the
// session's WAL records; caller holds l.mu.
func (l *Log) writeSnapshotLocked(ps *stream.PersistedSession) error {
	if err := writeSnapshotFile(l.dir, ps); err != nil {
		return err
	}
	metrics.snapshots.Inc()
	l.unsnapped[ps.ID] = 0
	l.maybeCompactLocked()
	return nil
}

// maybeCompactLocked truncates the WAL when enough garbage accumulated
// and every surviving record is covered by a snapshot; caller holds
// l.mu. Quiet moments (graceful shutdown's final snapshots, single-
// session traffic) trigger it naturally; busy overlapping sessions defer
// to the unconditional compaction at next boot.
func (l *Log) maybeCompactLocked() {
	if l.opts.CompactThreshold < 0 || l.err != nil {
		return
	}
	needed := 0
	for _, n := range l.unsnapped {
		needed += n
	}
	if needed > 0 || l.walRecs < l.opts.CompactThreshold {
		return
	}
	if err := l.truncateWALLocked(); err != nil {
		l.setErrLocked(err)
		return
	}
	metrics.compactions.Inc()
}

// truncateWALLocked empties the WAL file; caller holds l.mu.
func (l *Log) truncateWALLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.w.Reset(l.f)
	l.walRecs = 0
	l.unsnapped = make(map[string]int)
	l.dirty = false
	metrics.walRecords.Set(0)
	return nil
}

// snapPath names a session's snapshot file.
func snapPath(dir, id string) string {
	return filepath.Join(dir, "snap-"+sanitizeID(id)+".json")
}

// sanitizeID keeps snapshot filenames safe even if a session ID ever
// carried path metacharacters (today's IDs are hex, but the store should
// not trust that).
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, id)
}

// removeSnapshotLocked deletes a session's snapshot file if present.
func (l *Log) removeSnapshotLocked(id string) {
	if err := os.Remove(snapPath(l.dir, id)); err != nil && !os.IsNotExist(err) {
		l.opts.Logger.Warn("durable: remove snapshot", "session", id, "err", err)
	}
}
