package durable

import (
	"os"
	"path/filepath"
	"sync/atomic"

	"resilience/internal/telemetry"
)

// metrics are the durability telemetry handles, resolved once. The
// family answers the operational questions a WAL raises: how much is
// being written and synced, how expensive was the last boot replay, and
// whether crashes are leaving (and recovery is absorbing) torn tails.
var metrics = struct {
	written            *telemetry.Counter
	replayed           *telemetry.Counter
	fsyncs             *telemetry.Counter
	tornDrops          *telemetry.Counter
	compactions        *telemetry.Counter
	snapshots          *telemetry.Counter
	snapshotLoadErrors *telemetry.Counter
	replayDuration     *telemetry.Gauge
	walRecords         *telemetry.Gauge
	fsyncDuration      *telemetry.Histogram
}{
	written:            telemetry.GetOrCreateCounter("resil_durable_records_written_total"),
	replayed:           telemetry.GetOrCreateCounter("resil_durable_records_replayed_total"),
	fsyncs:             telemetry.GetOrCreateCounter("resil_durable_fsyncs_total"),
	tornDrops:          telemetry.GetOrCreateCounter("resil_durable_torn_tail_drops_total"),
	compactions:        telemetry.GetOrCreateCounter("resil_durable_compactions_total"),
	snapshots:          telemetry.GetOrCreateCounter("resil_durable_snapshots_written_total"),
	snapshotLoadErrors: telemetry.GetOrCreateCounter("resil_durable_snapshot_load_errors_total"),
	replayDuration:     telemetry.GetOrCreateGauge("resil_durable_replay_duration_seconds"),
	walRecords:         telemetry.GetOrCreateGauge("resil_durable_wal_records"),
	fsyncDuration:      telemetry.GetOrCreateHistogram("resil_durable_fsync_duration_seconds", telemetry.DurationBuckets()),
}

// currentDir names the most recently opened Log's directory for the WAL
// dir-size gauge; a package-level atomic (rather than a closure over one
// Log) so the scrape-time callback follows reopens.
var currentDir atomic.Value // string

// walDirBytes sums the on-disk size of the WAL directory (WAL file plus
// snapshots), the disk-pressure number operators actually watch.
func walDirBytes() float64 {
	dir, _ := currentDir.Load().(string)
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := os.Stat(filepath.Join(dir, e.Name())); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return float64(total)
}

// StatsSnapshot is the JSON view of the durability counters, embedded
// in the server's GET /v1/stats reply so recovery health is visible
// outside /metrics.
type StatsSnapshot struct {
	RecordsWritten     uint64  `json:"records_written"`
	RecordsReplayed    uint64  `json:"records_replayed"`
	Fsyncs             uint64  `json:"fsyncs"`
	TornTailDrops      uint64  `json:"torn_tail_drops"`
	Compactions        uint64  `json:"compactions"`
	SnapshotsWritten   uint64  `json:"snapshots_written"`
	SnapshotLoadErrors uint64  `json:"snapshot_load_errors"`
	ReplaySeconds      float64 `json:"replay_duration_seconds"`
	WALRecords         float64 `json:"wal_records"`
	WALDirBytes        float64 `json:"wal_dir_bytes"`
	FsyncP99Ms         float64 `json:"fsync_p99_ms"`
}

// SnapshotStats snapshots the process-wide durability counters.
func SnapshotStats() StatsSnapshot {
	s := StatsSnapshot{
		RecordsWritten:     metrics.written.Value(),
		RecordsReplayed:    metrics.replayed.Value(),
		Fsyncs:             metrics.fsyncs.Value(),
		TornTailDrops:      metrics.tornDrops.Value(),
		Compactions:        metrics.compactions.Value(),
		SnapshotsWritten:   metrics.snapshots.Value(),
		SnapshotLoadErrors: metrics.snapshotLoadErrors.Value(),
		ReplaySeconds:      metrics.replayDuration.Value(),
		WALRecords:         metrics.walRecords.Value(),
		WALDirBytes:        walDirBytes(),
	}
	if metrics.fsyncDuration.Count() > 0 {
		s.FsyncP99Ms = metrics.fsyncDuration.Quantile(0.99) * 1000
	}
	return s
}

func init() {
	telemetry.RegisterFamily("resil_durable_records_written_total", "counter",
		"WAL records appended and acknowledged.")
	telemetry.RegisterFamily("resil_durable_records_replayed_total", "counter",
		"WAL records replayed during boot recovery.")
	telemetry.RegisterFamily("resil_durable_fsyncs_total", "counter",
		"fsync calls issued against the WAL.")
	telemetry.RegisterFamily("resil_durable_torn_tail_drops_total", "counter",
		"Damaged WAL tail records truncated during recovery (expected after a crash mid-write).")
	telemetry.RegisterFamily("resil_durable_compactions_total", "counter",
		"WAL truncations after snapshot coverage (including the one at every boot).")
	telemetry.RegisterFamily("resil_durable_snapshots_written_total", "counter",
		"Per-session snapshot files written.")
	telemetry.RegisterFamily("resil_durable_snapshot_load_errors_total", "counter",
		"Snapshot files skipped as unreadable during recovery.")
	telemetry.RegisterFamily("resil_durable_replay_duration_seconds", "gauge",
		"Wall time of the most recent boot recovery pass.")
	telemetry.RegisterFamily("resil_durable_wal_records", "gauge",
		"Records currently in the WAL (resets on compaction).")
	telemetry.RegisterFamily("resil_durable_fsync_duration_seconds", "histogram",
		"Wall time of WAL fsync calls.")
	telemetry.RegisterFamily("resil_durable_wal_dir_bytes", "gauge",
		"On-disk bytes in the WAL directory (WAL plus snapshots).")
	telemetry.GetOrCreateGaugeFunc("resil_durable_wal_dir_bytes", walDirBytes)
}
