package durable

import "resilience/internal/telemetry"

// metrics are the durability telemetry handles, resolved once. The
// family answers the operational questions a WAL raises: how much is
// being written and synced, how expensive was the last boot replay, and
// whether crashes are leaving (and recovery is absorbing) torn tails.
var metrics = struct {
	written            *telemetry.Counter
	replayed           *telemetry.Counter
	fsyncs             *telemetry.Counter
	tornDrops          *telemetry.Counter
	compactions        *telemetry.Counter
	snapshots          *telemetry.Counter
	snapshotLoadErrors *telemetry.Counter
	replayDuration     *telemetry.Gauge
	walRecords         *telemetry.Gauge
}{
	written:            telemetry.GetOrCreateCounter("resil_durable_records_written_total"),
	replayed:           telemetry.GetOrCreateCounter("resil_durable_records_replayed_total"),
	fsyncs:             telemetry.GetOrCreateCounter("resil_durable_fsyncs_total"),
	tornDrops:          telemetry.GetOrCreateCounter("resil_durable_torn_tail_drops_total"),
	compactions:        telemetry.GetOrCreateCounter("resil_durable_compactions_total"),
	snapshots:          telemetry.GetOrCreateCounter("resil_durable_snapshots_written_total"),
	snapshotLoadErrors: telemetry.GetOrCreateCounter("resil_durable_snapshot_load_errors_total"),
	replayDuration:     telemetry.GetOrCreateGauge("resil_durable_replay_duration_seconds"),
	walRecords:         telemetry.GetOrCreateGauge("resil_durable_wal_records"),
}

func init() {
	telemetry.RegisterFamily("resil_durable_records_written_total", "counter",
		"WAL records appended and acknowledged.")
	telemetry.RegisterFamily("resil_durable_records_replayed_total", "counter",
		"WAL records replayed during boot recovery.")
	telemetry.RegisterFamily("resil_durable_fsyncs_total", "counter",
		"fsync calls issued against the WAL.")
	telemetry.RegisterFamily("resil_durable_torn_tail_drops_total", "counter",
		"Damaged WAL tail records truncated during recovery (expected after a crash mid-write).")
	telemetry.RegisterFamily("resil_durable_compactions_total", "counter",
		"WAL truncations after snapshot coverage (including the one at every boot).")
	telemetry.RegisterFamily("resil_durable_snapshots_written_total", "counter",
		"Per-session snapshot files written.")
	telemetry.RegisterFamily("resil_durable_snapshot_load_errors_total", "counter",
		"Snapshot files skipped as unreadable during recovery.")
	telemetry.RegisterFamily("resil_durable_replay_duration_seconds", "gauge",
		"Wall time of the most recent boot recovery pass.")
	telemetry.RegisterFamily("resil_durable_wal_records", "gauge",
		"Records currently in the WAL (resets on compaction).")
}
