package telemetry

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the at-or-below bucketing contract:
// a value exactly on a bound lands in that bound's bucket (Prometheus
// `le` semantics), values between bounds land in the next bucket up, and
// values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2.5, 10})
	cases := []struct {
		v    float64
		want int // index into counts: 0..2 finite buckets, 3 = +Inf
	}{
		{math.Inf(-1), 0},
		{-5, 0},
		{0, 0},
		{1, 0},    // exactly on a bound: inclusive
		{1.01, 1}, // just past: next bucket
		{2.5, 1},
		{2.500001, 2},
		{10, 2},
		{10.5, 3},
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}

	for _, c := range cases {
		h.Observe(c.v)
	}
	_, cum := h.Buckets()
	// Cumulative counts: 4 values ≤1, +2 ≤2.5, +2 ≤10, +2 beyond.
	want := []uint64{4, 6, 8, 10}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
}

func TestHistogramSumAndNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(math.NaN()) // dropped
	if got := h.Sum(); got != 0.75 {
		t.Errorf("sum = %g, want 0.75", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{1, math.Inf(1)},
		{math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"duration": DurationBuckets(),
		"count":    CountBuckets(),
		"depth":    DepthBuckets(),
		"linear":   LinearBuckets(1, 2, 5),
		"expo":     ExponentialBuckets(1, 10, 4),
	} {
		if len(bounds) == 0 {
			t.Errorf("%s: empty", name)
			continue
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("%s: bounds not increasing at %d: %v", name, i, bounds)
			}
		}
		NewHistogram(bounds) // must not panic
	}
	if got := LinearBuckets(1, 2, 3); got[2] != 5 {
		t.Errorf("LinearBuckets end = %g, want 5", got[2])
	}
	if got := ExponentialBuckets(1, 10, 4); got[3] != 1000 {
		t.Errorf("ExponentialBuckets end = %g, want 1000", got[3])
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram quantile = %g, want NaN", q)
	}

	// 100 observations uniform over (0, 1]: every quantile interpolates
	// inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); q != 0.5 {
		t.Errorf("p50 over one bucket = %g, want 0.5 (midpoint interpolation)", q)
	}

	h2 := NewHistogram([]float64{1, 2, 4, 8})
	// 90 in (0,1], 10 in (4,8]: p50 inside first bucket, p99 in the fourth.
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(5)
	}
	if q := h2.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %g, want inside (0, 1]", q)
	}
	if q := h2.Quantile(0.99); q <= 4 || q > 8 {
		t.Errorf("p99 = %g, want inside (4, 8]", q)
	}
	if q := h2.Quantile(0); q < 0 || q > 1 {
		t.Errorf("p0 = %g, want inside first occupied bucket", q)
	}

	// Overflow: everything beyond the last bound reports the last bound.
	h3 := NewHistogram([]float64{1})
	h3.Observe(50)
	if q := h3.Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %g, want last finite bound 1", q)
	}

	// Clamping.
	if q := h2.Quantile(1.7); q != h2.Quantile(1) {
		t.Errorf("q>1 not clamped: %g vs %g", q, h2.Quantile(1))
	}
}

// TestHistogramExemplars pins the exemplar contract: a traced
// observation becomes its bucket's exemplar with the exact value and
// trace ID, the latest traced observation in a bucket wins, untraced
// observations never disturb exemplars, and counts/sums stay identical
// to plain Observe. This is what makes the " # {trace_id=...}" suffix
// on /metrics trustworthy — a mis-bucketed exemplar would send an
// operator chasing the wrong trace.
func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})

	h.ObserveWithExemplar(0.05, "trace-slowish")
	h.ObserveWithExemplar(0.005, "trace-fast")
	h.Observe(0.06) // untraced: counted, but no exemplar
	h.ObserveWithExemplar(5, "trace-overflow")

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("got %d exemplars, want 3: %+v", len(ex), ex)
	}
	// Bound order: 0.01 bucket, 0.1 bucket, +Inf bucket.
	checks := []struct {
		le    float64
		value float64
		id    string
	}{
		{0.01, 0.005, "trace-fast"},
		{0.1, 0.05, "trace-slowish"},
		{math.Inf(1), 5, "trace-overflow"},
	}
	for i, c := range checks {
		if ex[i].LE != c.le || ex[i].Value != c.value || ex[i].TraceID != c.id {
			t.Errorf("exemplar[%d] = {le:%v value:%v id:%q}, want {%v %v %q}",
				i, ex[i].LE, ex[i].Value, ex[i].TraceID, c.le, c.value, c.id)
		}
		if ex[i].Time.IsZero() {
			t.Errorf("exemplar[%d] has zero timestamp", i)
		}
	}

	// Latest traced observation in a bucket replaces the previous one.
	h.ObserveWithExemplar(0.07, "trace-newer")
	for _, e := range h.Exemplars() {
		if e.LE == 0.1 && e.TraceID != "trace-newer" {
			t.Errorf("bucket 0.1 exemplar = %q, want trace-newer (latest wins)", e.TraceID)
		}
	}
	// An empty trace ID counts the value but records no exemplar.
	h.ObserveWithExemplar(0.08, "")
	for _, e := range h.Exemplars() {
		if e.LE == 0.1 && e.TraceID != "trace-newer" {
			t.Errorf("empty trace ID overwrote exemplar: %q", e.TraceID)
		}
	}

	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	wantSum := 0.05 + 0.005 + 0.06 + 5 + 0.07 + 0.08
	if math.Abs(h.Sum()-wantSum) > 1e-12 {
		t.Errorf("sum %v, want %v", h.Sum(), wantSum)
	}
	_, cumulative := h.Buckets()
	if cumulative[len(cumulative)-1] != 6 {
		t.Errorf("+Inf cumulative %d, want 6", cumulative[len(cumulative)-1])
	}
}
