package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rec(id string, d time.Duration, route string, isErr bool) *TraceRecord {
	return &TraceRecord{
		TraceID:  id,
		Route:    route,
		Start:    time.Unix(0, 0).Add(d), // distinct, ordered starts
		Duration: d,
		Error:    isErr,
	}
}

// TestTraceStoreTiers checks the two-tier retention contract: slow and
// error traces land in the always-keep ring (evicted only by ring wrap,
// never by sampling), ordinary traces are reservoir-sampled into
// bounded memory, and the ID index tracks both tiers through eviction.
func TestTraceStoreTiers(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Capacity: 8, KeepCapacity: 4, SlowThreshold: 100 * time.Millisecond})

	// Fill the keep ring with error traces, then wrap it once: the first
	// records must be evicted (and unindexed), the newest retained.
	for i := 0; i < 6; i++ {
		s.Record(rec(fmt.Sprintf("err-%d", i), time.Millisecond, "/a", true))
	}
	if _, ok := s.Get("err-0"); ok {
		t.Error("err-0 should have been evicted by ring wrap")
	}
	if _, ok := s.Get("err-5"); !ok {
		t.Error("err-5 should be retained in the keep ring")
	}

	// A slow-but-successful trace also always lands in the keep ring.
	s.Record(rec("slow-1", 200*time.Millisecond, "/b", false))
	if _, ok := s.Get("slow-1"); !ok {
		t.Error("slow trace not retained")
	}

	// Ordinary traces are sampled: the store never exceeds Capacity of
	// them, no matter how many are offered.
	for i := 0; i < 100; i++ {
		s.Record(rec(fmt.Sprintf("ord-%d", i), time.Millisecond, "/c", false))
	}
	if n := s.Len(); n > 8+4 {
		t.Errorf("store holds %d traces, want <= capacity+keep = 12", n)
	}

	// Every retained trace must still resolve through Get — the ID index
	// may not leak evicted entries or drop live ones.
	for _, r := range s.List(TraceFilter{Limit: 12}) {
		got, ok := s.Get(r.TraceID)
		if !ok || got != r {
			t.Errorf("listed trace %s not resolvable via Get", r.TraceID)
		}
	}
}

// TestTraceStoreListFilters exercises route, min-duration, errors-only,
// and limit filtering plus newest-first ordering.
func TestTraceStoreListFilters(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Capacity: 32, KeepCapacity: 8, SlowThreshold: time.Second})
	s.Record(rec("a1", 10*time.Millisecond, "/a", false))
	s.Record(rec("a2", 90*time.Millisecond, "/a", true))
	s.Record(rec("b1", 50*time.Millisecond, "/b", false))

	if got := s.List(TraceFilter{Route: "/a"}); len(got) != 2 {
		t.Errorf("route filter: got %d traces, want 2", len(got))
	}
	if got := s.List(TraceFilter{MinDuration: 40 * time.Millisecond}); len(got) != 2 {
		t.Errorf("min-duration filter: got %d, want 2", len(got))
	}
	if got := s.List(TraceFilter{ErrorsOnly: true}); len(got) != 1 || got[0].TraceID != "a2" {
		t.Errorf("errors-only filter: got %v", got)
	}
	got := s.List(TraceFilter{Limit: 2})
	if len(got) != 2 {
		t.Fatalf("limit: got %d, want 2", len(got))
	}
	// Newest first: starts are ordered by duration in rec().
	if got[0].TraceID != "a2" || got[1].TraceID != "b1" {
		t.Errorf("ordering: got %s, %s; want a2, b1", got[0].TraceID, got[1].TraceID)
	}
}

// TestTraceStoreHammer drives Record, Get, List, and Len concurrently
// so `go test -race` can watch the ring, reservoir, and ID index. The
// assertions are deliberately weak (no torn records, Len bounded) —
// the race detector is the real check here.
func TestTraceStoreHammer(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Capacity: 16, KeepCapacity: 8, SlowThreshold: 50 * time.Millisecond})
	const writers, readers, perWriter = 4, 4, 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := time.Duration(i%100) * time.Millisecond // mixes tiers
				s.Record(rec(fmt.Sprintf("w%d-%d", w, i), d, "/hammer", i%7 == 0))
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range s.List(TraceFilter{Limit: 10}) {
					if tr.TraceID == "" {
						t.Error("listed trace with empty ID")
						return
					}
				}
				s.Get(fmt.Sprintf("w%d-%d", r%writers, i%perWriter))
				if n := s.Len(); n > 16+8 {
					t.Errorf("Len %d exceeds capacity", n)
					return
				}
			}
		}(r)
	}

	// Writers finish first; readers keep hammering until told to stop.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	if n := s.Len(); n == 0 {
		t.Error("store empty after hammer")
	}
}
