package telemetry

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 || !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
			t.Fatalf("request ID %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID without trace = %q", got)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Errorf("TraceFrom without trace = %v", got)
	}
	tr := &Trace{ID: "abc123"}
	ctx := WithTrace(context.Background(), tr)
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("RequestID = %q, want abc123", got)
	}

	sp := StartSpan(ctx, "work")
	time.Sleep(time.Millisecond)
	d := sp.End(Int("iters", 42))
	if d <= 0 {
		t.Errorf("span duration %v not positive", d)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "work" {
		t.Fatalf("spans = %+v", spans)
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{Key: "iters", Value: 42}) {
		t.Errorf("attrs = %+v", spans[0].Attrs)
	}
	s := tr.String()
	if !strings.Contains(s, "work=") || !strings.Contains(s, "iters=42") {
		t.Errorf("trace string %q missing span fields", s)
	}
}

// TestSpanWithoutTrace checks the no-op sink: spans on a bare context
// still measure durations and never panic.
func TestSpanWithoutTrace(t *testing.T) {
	sp := StartSpan(context.Background(), "orphan")
	if d := sp.End(); d < 0 {
		t.Errorf("duration %v", d)
	}
	var nilTrace *Trace
	nilTrace.add(Span{Name: "x"}) // must not panic
	if got := nilTrace.Spans(); got != nil {
		t.Errorf("nil trace spans = %v", got)
	}
	if got := nilTrace.String(); got != "" {
		t.Errorf("nil trace string = %q", got)
	}
}

func TestTraceSpanCapAndConcurrency(t *testing.T) {
	tr := &Trace{ID: "cap"}
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < maxSpansPerTrace/4; i++ {
				StartSpan(ctx, "s").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != maxSpansPerTrace {
		t.Errorf("spans retained = %d, want cap %d", got, maxSpansPerTrace)
	}
}
