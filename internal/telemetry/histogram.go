package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram in the Prometheus style: each
// bucket counts observations at or below its upper bound, plus an
// implicit +Inf bucket, a running sum, and a total count. Observation is
// lock-free: one atomic add for the bucket, one for the count, and a CAS
// loop for the float sum.
type Histogram struct {
	// bounds are the finite bucket upper bounds, strictly increasing.
	bounds []float64
	// counts holds one non-cumulative counter per bound plus the +Inf
	// overflow bucket at the end.
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	// exemplars holds the most recent traced observation per bucket
	// (same layout as counts), swapped in with one atomic store.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation to the trace that produced
// it, so a histogram bucket ("p99 is slow") can be followed to a full
// span tree ("because fsync took 80ms on that request").
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// BucketExemplar is an exemplar tagged with its bucket's upper bound,
// the JSON view served on /v1/stats.
type BucketExemplar struct {
	LE float64 `json:"le"`
	Exemplar
}

// NewHistogram builds a histogram with the given finite bucket upper
// bounds. Bounds must be strictly increasing, finite, and non-empty; the
// +Inf bucket is implicit. It panics on a malformed bound list, which is
// an instrumentation-site bug.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bounds must be finite")
		}
		if i > 0 && b <= own[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds:    own,
		counts:    make([]atomic.Uint64, len(own)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(own)+1),
	}
}

// Observe records one value. NaN observations are dropped (they cannot
// be bucketed or summed meaningfully).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's exemplar (latest wins). The exemplar
// store is one atomic pointer swap, so hot paths pay almost nothing
// beyond Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// Exemplars returns the buckets that currently hold an exemplar, in
// bound order (+Inf last).
func (h *Histogram) Exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out = append(out, BucketExemplar{LE: le, Exemplar: *e})
	}
	return out
}

// bucketIndex locates the first bucket whose upper bound is >= v, via
// binary search; len(bounds) is the +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the finite upper bounds and the cumulative count at or
// below each, plus the total (+Inf) count last — the exposition view.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative
}

// Quantile estimates the q-quantile (e.g. 0.5, 0.99) from the bucket
// counts by linear interpolation inside the owning bucket — the same
// estimate Prometheus's histogram_quantile computes. It returns NaN on
// an empty histogram; ranks landing in the +Inf overflow bucket report
// the largest finite bound (the estimate cannot exceed instrumentation
// range). q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	q = math.Min(math.Max(q, 0), 1)
	bounds, cumulative := h.Buckets()
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var prevCount uint64
	lower := 0.0
	for i, bound := range bounds {
		c := cumulative[i]
		if float64(c) >= rank {
			inBucket := float64(c - prevCount)
			if inBucket == 0 {
				return bound
			}
			return lower + (bound-lower)*(rank-float64(prevCount))/inBucket
		}
		prevCount, lower = c, bound
	}
	return bounds[len(bounds)-1]
}

// writeExposition renders the histogram as cumulative _bucket lines plus
// _sum and _count, splicing the le label into the metric's label set.
func (h *Histogram) writeExposition(b *strings.Builder, fullName string) {
	fam := familyOf(fullName)
	labels := ""
	if len(fam) < len(fullName) {
		labels = strings.TrimSuffix(strings.TrimPrefix(fullName[len(fam):], "{"), "}")
	}
	withLE := func(le string) string {
		if labels == "" {
			return fam + `_bucket{le="` + le + `"}`
		}
		return fam + "_bucket{" + labels + `,le="` + le + `"}`
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return fam + suffix
		}
		return fam + suffix + "{" + labels + "}"
	}

	bounds, cumulative := h.Buckets()
	for i, bound := range bounds {
		b.WriteString(withLE(formatFloat(bound)))
		b.WriteByte(' ')
		b.WriteString(uitoa(cumulative[i]))
		h.writeExemplar(b, i)
		b.WriteByte('\n')
	}
	b.WriteString(withLE("+Inf"))
	b.WriteByte(' ')
	b.WriteString(uitoa(cumulative[len(cumulative)-1]))
	h.writeExemplar(b, len(bounds))
	b.WriteByte('\n')
	b.WriteString(suffixed("_sum"))
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(suffixed("_count"))
	b.WriteByte(' ')
	b.WriteString(uitoa(h.count.Load()))
	b.WriteByte('\n')
}

// writeExemplar appends the OpenMetrics exemplar suffix for bucket i
// when one is set: ` # {trace_id="..."} value timestamp`. Plain
// Prometheus text parsers that read "name value" still work because the
// suffix follows the value.
func (h *Histogram) writeExemplar(b *strings.Builder, i int) {
	e := h.exemplars[i].Load()
	if e == nil {
		return
	}
	b.WriteString(` # {trace_id="`)
	b.WriteString(escapeLabel(e.TraceID))
	b.WriteString(`"} `)
	b.WriteString(formatFloat(e.Value))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(float64(e.Time.UnixMilli())/1000, 'f', 3, 64))
}

func uitoa(v uint64) string {
	// Small helper so exposition avoids fmt.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// DurationBuckets returns the standard latency bucket bounds in seconds,
// spanning 0.5ms to 30s — wide enough for both HTTP handling and full
// degradation chains.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// CountBuckets returns bucket bounds for iteration/evaluation counts,
// roughly logarithmic from 10 to 100000.
func CountBuckets() []float64 {
	return []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
		10000, 25000, 50000, 100000}
}

// DepthBuckets returns small linear bucket bounds for chain/queue depths.
func DepthBuckets() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 8}
}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
