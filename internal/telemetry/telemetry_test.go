package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden locks down the exact Prometheus text format the
// registry emits: family metadata, sorted ordering, label handling,
// counter/gauge/histogram rendering, and escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.RegisterFamily("app_requests_total", "counter", "Requests served.")
	r.RegisterFamily("app_temperature", "gauge", "Current temperature.")
	r.RegisterFamily("app_latency_seconds", "histogram", "Request latency.")

	r.GetOrCreateCounter(`app_requests_total{route="/fit",status="200"}`).Add(3)
	r.GetOrCreateCounter(`app_requests_total{route="/fit",status="500"}`).Inc()
	r.GetOrCreateGauge("app_temperature").Set(21.5)
	h := r.GetOrCreateHistogram(`app_latency_seconds{route="/fit"}`, []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)
	// An unregistered family must still expose, as untyped.
	r.GetOrCreateCounter(`zz_unregistered`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{route="/fit",le="0.1"} 1
app_latency_seconds_bucket{route="/fit",le="1"} 3
app_latency_seconds_bucket{route="/fit",le="10"} 3
app_latency_seconds_bucket{route="/fit",le="+Inf"} 4
app_latency_seconds_sum{route="/fit"} 100.05
app_latency_seconds_count{route="/fit"} 4
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{route="/fit",status="200"} 3
app_requests_total{route="/fit",status="500"} 1
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 21.5
zz_unregistered 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.RegisterFamily("esc_total", "counter", "line one\nwith \\ backslash")
	name := `esc_total{path="` + escapeLabel(`a"b\c`+"\n") + `"}`
	r.GetOrCreateCounter(name).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# HELP esc_total line one\nwith \\ backslash`,
		`esc_total{path="a\"b\\c\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGetOrCreateReusesAndChecksTypes(t *testing.T) {
	r := NewRegistry()
	c1 := r.GetOrCreateCounter("x_total")
	c2 := r.GetOrCreateCounter("x_total")
	if c1 != c2 {
		t.Error("GetOrCreateCounter returned distinct instances for one name")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering x_total as a gauge")
		}
	}()
	r.GetOrCreateGauge("x_total")
}

func TestValidateName(t *testing.T) {
	for _, bad := range []string{"", "1abc", "a b", "a{unclosed", "a}b", "-x"} {
		if err := validateName(bad); err == nil {
			t.Errorf("validateName(%q) accepted an invalid name", bad)
		}
	}
	for _, good := range []string{"a", "abc_def:x9", `a{k="v"}`, `a{k="v",k2="v2"}`} {
		if err := validateName(good); err != nil {
			t.Errorf("validateName(%q) = %v", good, err)
		}
	}
}

func TestGaugeFuncAndAdd(t *testing.T) {
	r := NewRegistry()
	g := r.GetOrCreateGauge("g")
	g.Set(2)
	g.Add(0.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge value = %g, want 2.5", got)
	}
	calls := 0
	gf := r.GetOrCreateGaugeFunc("gf", func() float64 { calls++; return 7 })
	if got := gf.Value(); got != 7 || calls != 1 {
		t.Errorf("gauge func value = %g (calls %d)", got, calls)
	}
}

func TestLabels(t *testing.T) {
	got := Labels("model", "quadratic", "note", `a"b`)
	want := `model="quadratic",note="a\"b"`
	if got != want {
		t.Errorf("Labels = %q, want %q", got, want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.GetOrCreateCounter("served_total").Add(5)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 5") {
		t.Errorf("body missing counter: %s", rec.Body.String())
	}
}
