package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the spans recorded while serving one request, keyed by
// the request ID. The HTTP middleware creates one per request and logs
// its spans alongside the access line; lower layers (fit driver,
// degradation chain, optimizer) append to it through the context without
// knowing who is listening. A nil *Trace is a valid no-op sink, so
// library callers without tracing pay only a context lookup.
//
// Since the trace store was added, a Trace also carries a W3C-shaped
// 32-hex TraceID (propagated via the traceparent header) and its spans
// form a tree through SpanID/ParentID, so a completed trace can be
// retained and queried rather than only flattened into one log line.
type Trace struct {
	// ID is the request ID the trace belongs to.
	ID string
	// TraceID is the 32-hex W3C trace ID, either adopted from an inbound
	// traceparent header or freshly generated. Empty for legacy callers
	// that only want span logging.
	TraceID string

	mu    sync.Mutex
	spans []Span
}

// maxSpansPerTrace bounds memory per request. A 256-point stream
// observe chunk records a handful of spans per point, so the cap sits
// above one full chunk without letting a pathological loop grow a trace
// without bound.
const maxSpansPerTrace = 2048

// Span is one timed region of work inside a request.
type Span struct {
	// Name identifies the region, e.g. "fit.quadratic" or "chain.attempt.exp-exp".
	Name string
	// SpanID is the 16-hex span identifier; ParentID is the SpanID of
	// the enclosing span ("" for a root span).
	SpanID   string
	ParentID string
	// Start is when the region began.
	Start time.Time
	// Duration is how long it ran.
	Duration time.Duration
	// Status is "" for success, otherwise a short error description.
	Status string
	// Attrs carry small measurements (iterations, evals, depth) and
	// string annotations (session ID, cache outcome).
	Attrs []Attr
}

// Attr is one measurement attached to a span: integer-valued when SVal
// is empty, string-valued otherwise.
type Attr struct {
	Key   string
	Value int64
	SVal  string
}

// Int builds an integer span attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: int64(v)} }

// Str builds a string span attribute.
func Str(key, v string) Attr { return Attr{Key: key, SVal: v} }

// add appends a finished span, dropping it silently once the cap is hit.
func (t *Trace) add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < maxSpansPerTrace {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// String renders the trace compactly for structured logs:
// "fit.quadratic=12.3ms{iters=840,evals=2100} chain=12.5ms".
func (t *Trace) String() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(formatFloat(float64(s.Duration.Microseconds()) / 1000))
		b.WriteString("ms")
		if len(s.Attrs) > 0 {
			b.WriteByte('{')
			for j, a := range s.Attrs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(a.Key)
				b.WriteByte('=')
				if a.SVal != "" {
					b.WriteString(a.SVal)
				} else {
					b.WriteString(strconv.FormatInt(a.Value, 10))
				}
			}
			b.WriteByte('}')
		}
	}
	return b.String()
}

type traceKey struct{}

// spanIDKey carries the SpanID of the innermost open span, so spans
// started from a child context nest under it.
type spanIDKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when tracing is not
// active (nil is a valid no-op sink for ActiveSpan and Trace methods).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RequestID returns the context's request ID, or "" without a trace.
func RequestID(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.ID
	}
	return ""
}

// TraceID returns the context's W3C trace ID, or "" without a trace.
func TraceID(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.TraceID
	}
	return ""
}

// SpanIDFrom returns the SpanID of the innermost open span in ctx, or ""
// when no span context is active.
func SpanIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(spanIDKey{}).(string)
	return id
}

// WithParentSpanID seeds ctx with a parent span ID, used by transport
// edges to parent their root span under a remote caller's span (the
// span ID carried in an inbound traceparent header).
func WithParentSpanID(ctx context.Context, spanID string) context.Context {
	return context.WithValue(ctx, spanIDKey{}, spanID)
}

// ActiveSpan is an in-flight span. It is a small value type: starting a
// span costs a context lookup and a clock read, and when no trace is
// attached End only reads the clock.
type ActiveSpan struct {
	trace    *Trace
	name     string
	spanID   string
	parentID string
	start    time.Time
}

// StartSpan begins a span named name against the context's trace (a
// no-op sink when none is attached). The span's parent is the innermost
// span already open in ctx; use StartSpanCtx when work below this span
// should nest under it.
func StartSpan(ctx context.Context, name string) ActiveSpan {
	t := TraceFrom(ctx)
	s := ActiveSpan{trace: t, name: name, start: time.Now()}
	if t != nil {
		s.spanID = NewSpanID()
		s.parentID = SpanIDFrom(ctx)
	}
	return s
}

// StartSpanCtx begins a span and returns a child context under which
// further spans nest as children of this one. When ctx carries no trace
// the returned context is ctx unchanged.
func StartSpanCtx(ctx context.Context, name string) (context.Context, ActiveSpan) {
	s := StartSpan(ctx, name)
	if s.trace == nil {
		return ctx, s
	}
	return context.WithValue(ctx, spanIDKey{}, s.spanID), s
}

// SpanID returns the span's 16-hex identifier ("" on a no-op span).
func (s ActiveSpan) SpanID() string { return s.spanID }

// End finishes the span with OK status, recording it on the trace with
// the given attributes, and returns the measured duration so callers can
// feed histograms without reading the clock twice.
func (s ActiveSpan) End(attrs ...Attr) time.Duration {
	return s.finish("", attrs)
}

// EndErr finishes the span, marking it failed when err is non-nil.
func (s ActiveSpan) EndErr(err error, attrs ...Attr) time.Duration {
	status := ""
	if err != nil {
		status = err.Error()
		if len(status) > 160 {
			status = status[:160]
		}
	}
	return s.finish(status, attrs)
}

// EndStatus finishes the span with an explicit status string.
func (s ActiveSpan) EndStatus(status string, attrs ...Attr) time.Duration {
	return s.finish(status, attrs)
}

func (s ActiveSpan) finish(status string, attrs []Attr) time.Duration {
	d := time.Since(s.start)
	if s.trace != nil {
		s.trace.add(Span{
			Name:     s.name,
			SpanID:   s.spanID,
			ParentID: s.parentID,
			Start:    s.start,
			Duration: d,
			Status:   status,
			Attrs:    attrs,
		})
	}
	return d
}

// reqSeq disambiguates fallback request IDs when the random source is
// unavailable.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID. It prefers
// crypto/rand and falls back to a process-unique sequence number, so it
// never fails.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err == nil {
		return hex.EncodeToString(buf[:])
	}
	return fmt.Sprintf("req-%016x", reqSeq.Add(1))
}

// idSeed mixes crypto-random entropy into the cheap per-span ID
// generator below; spans can be minted thousands of times per second, so
// they avoid a syscall-backed rand read each.
var idSeed = func() uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err == nil {
		return binary.LittleEndian.Uint64(buf[:])
	}
	return uint64(time.Now().UnixNano())
}()

var idSeq atomic.Uint64

// nextID returns a process-unique non-zero 64-bit ID (splitmix64 over a
// random-seeded counter).
func nextID() uint64 {
	for {
		z := idSeed + idSeq.Add(1)*0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// NewSpanID returns a fresh 16-hex, non-zero span ID.
func NewSpanID() string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], nextID())
	return hex.EncodeToString(buf[:])
}

// NewTraceID returns a fresh 32-hex, non-zero W3C trace ID.
func NewTraceID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil || allZero(buf[:]) {
		binary.BigEndian.PutUint64(buf[:8], nextID())
		binary.BigEndian.PutUint64(buf[8:], nextID())
	}
	return hex.EncodeToString(buf[:])
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// FormatTraceparent renders a W3C traceparent header (version 00,
// sampled flag set) for the given trace and span IDs.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent validates and splits a W3C traceparent header value,
// returning the trace ID and parent span ID. It accepts any version
// except the reserved ff, requires lowercase hex, and rejects all-zero
// IDs, per the spec.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	// version(2) - traceID(32) - spanID(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver, tid, sid, rest := h[:2], h[3:35], h[36:52], h[53:]
	if !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if len(rest) < 2 || !isLowerHex(rest[:2]) {
		return "", "", false
	}
	// Future versions may append fields after the flags; version 00 must
	// be exactly four fields.
	if ver == "00" && len(h) != 55 {
		return "", "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", "", false
	}
	if !isLowerHex(tid) || !isLowerHex(sid) {
		return "", "", false
	}
	if tid == strings.Repeat("0", 32) || sid == strings.Repeat("0", 16) {
		return "", "", false
	}
	return tid, sid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
