package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects the spans recorded while serving one request, keyed by
// the request ID. The HTTP middleware creates one per request and logs
// its spans alongside the access line; lower layers (fit driver,
// degradation chain, optimizer) append to it through the context without
// knowing who is listening. A nil *Trace is a valid no-op sink, so
// library callers without tracing pay only a context lookup.
type Trace struct {
	// ID is the request ID the trace belongs to.
	ID string

	mu    sync.Mutex
	spans []Span
}

// maxSpansPerTrace bounds memory per request; a pathological degradation
// chain records a few dozen spans, so the cap is far above normal use.
const maxSpansPerTrace = 128

// Span is one timed region of work inside a request.
type Span struct {
	// Name identifies the region, e.g. "fit.quadratic" or "chain.attempt.exp-exp".
	Name string
	// Start is when the region began.
	Start time.Time
	// Duration is how long it ran.
	Duration time.Duration
	// Attrs carry small integer measurements (iterations, evals, depth).
	Attrs []Attr
}

// Attr is one integer measurement attached to a span.
type Attr struct {
	Key   string
	Value int64
}

// Int builds a span attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: int64(v)} }

// add appends a finished span, dropping it silently once the cap is hit.
func (t *Trace) add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < maxSpansPerTrace {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// String renders the trace compactly for structured logs:
// "fit.quadratic=12.3ms{iters=840,evals=2100} chain=12.5ms".
func (t *Trace) String() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(formatFloat(float64(s.Duration.Microseconds()) / 1000))
		b.WriteString("ms")
		if len(s.Attrs) > 0 {
			b.WriteByte('{')
			for j, a := range s.Attrs {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(a.Key)
				b.WriteByte('=')
				b.WriteString(strconv.FormatInt(a.Value, 10))
			}
			b.WriteByte('}')
		}
	}
	return b.String()
}

type traceKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when tracing is not
// active (nil is a valid no-op sink for ActiveSpan and Trace methods).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// RequestID returns the context's request ID, or "" without a trace.
func RequestID(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.ID
	}
	return ""
}

// ActiveSpan is an in-flight span. It is a small value type: starting a
// span costs a context lookup and a clock read, and when no trace is
// attached End only reads the clock.
type ActiveSpan struct {
	trace *Trace
	name  string
	start time.Time
}

// StartSpan begins a span named name against the context's trace (a
// no-op sink when none is attached).
func StartSpan(ctx context.Context, name string) ActiveSpan {
	return ActiveSpan{trace: TraceFrom(ctx), name: name, start: time.Now()}
}

// End finishes the span, recording it on the trace with the given
// attributes, and returns the measured duration so callers can feed
// histograms without reading the clock twice.
func (s ActiveSpan) End(attrs ...Attr) time.Duration {
	d := time.Since(s.start)
	if s.trace != nil {
		s.trace.add(Span{Name: s.name, Start: s.start, Duration: d, Attrs: attrs})
	}
	return d
}

// reqSeq disambiguates fallback request IDs when the random source is
// unavailable.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID. It prefers
// crypto/rand and falls back to a process-unique sequence number, so it
// never fails.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err == nil {
		return hex.EncodeToString(buf[:])
	}
	return fmt.Sprintf("req-%016x", reqSeq.Add(1))
}
