package telemetry

import (
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): families sorted by name, each
// preceded by its # HELP and # TYPE lines when registered, metrics
// within a family sorted by full name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, name := range r.snapshotNames() {
		fam := familyOf(name)
		if fam != lastFamily {
			r.mu.RLock()
			meta, ok := r.families[fam]
			r.mu.RUnlock()
			if ok {
				if meta.help != "" {
					b.WriteString("# HELP ")
					b.WriteString(fam)
					b.WriteByte(' ')
					b.WriteString(escapeHelp(meta.help))
					b.WriteByte('\n')
				}
				typ := meta.typ
				if typ == "" {
					typ = "untyped"
				}
				b.WriteString("# TYPE ")
				b.WriteString(fam)
				b.WriteByte(' ')
				b.WriteString(typ)
				b.WriteByte('\n')
			}
			lastFamily = fam
		}
		r.mu.RLock()
		m := r.metrics[name]
		r.mu.RUnlock()
		if m != nil {
			m.writeExposition(&b, name)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeHelp escapes backslashes and newlines in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// WritePrometheus renders the Default registry.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry in Prometheus text format.
func Handler() http.Handler { return Default.Handler() }
