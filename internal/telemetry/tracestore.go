package telemetry

import (
	"sort"
	"sync"
	"time"
)

// TraceRecord is one completed trace retained for querying: identity,
// the request-level summary the list view filters on, and the full span
// tree. Records are immutable once handed to a TraceStore, so readers
// can share them without copying.
type TraceRecord struct {
	TraceID   string        `json:"trace_id"`
	RequestID string        `json:"request_id"`
	Route     string        `json:"route"`
	Method    string        `json:"method"`
	Status    int           `json:"status"`
	Error     bool          `json:"error"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"-"`
	// DurationMS mirrors Duration for the JSON views.
	DurationMS float64 `json:"duration_ms"`
	Spans      []Span  `json:"-"`
}

// TraceFilter selects traces from a store's List view.
type TraceFilter struct {
	// Route, when non-empty, keeps only traces for that route label.
	Route string
	// MinDuration keeps only traces at least this long.
	MinDuration time.Duration
	// ErrorsOnly keeps only traces whose Error flag is set.
	ErrorsOnly bool
	// Limit caps the result length (0 means the store default).
	Limit int
}

// TraceStoreConfig sizes a TraceStore.
type TraceStoreConfig struct {
	// Capacity is the reservoir size for ordinary traces.
	Capacity int
	// KeepCapacity is the always-keep ring size for slow/error traces.
	KeepCapacity int
	// SlowThreshold routes traces at or above this duration into the
	// always-keep ring regardless of sampling.
	SlowThreshold time.Duration
}

// DefaultTraceStoreConfig returns the sizing used by the process-wide
// store: 256 sampled + 64 always-kept traces and a 250ms slow bar.
func DefaultTraceStoreConfig() TraceStoreConfig {
	return TraceStoreConfig{Capacity: 256, KeepCapacity: 64, SlowThreshold: 250 * time.Millisecond}
}

// TraceStore retains completed traces in bounded memory with two tiers:
// an always-keep ring for traces that are slow or ended in error (the
// ones worth debugging, never sampled away — oldest evicted only by ring
// wrap), and a reservoir-sampled buffer for everything else, so the
// store also holds a uniform sample of ordinary traffic for baseline
// comparison. All methods are safe for concurrent use.
type TraceStore struct {
	cfg TraceStoreConfig

	mu sync.Mutex
	// keep is the always-keep ring; keepPos is the next overwrite slot.
	keep    []*TraceRecord
	keepPos int
	// sample is the reservoir; seen counts ordinary traces offered to it
	// (Algorithm R: once full, trace n replaces a random slot with
	// probability cap/n).
	sample []*TraceRecord
	seen   uint64
	// byID indexes both tiers for O(1) Get; entries die with their slot.
	byID map[string]*TraceRecord
	rng  uint64
}

// NewTraceStore builds a store; zero/negative config fields fall back to
// the defaults.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	def := DefaultTraceStoreConfig()
	if cfg.Capacity <= 0 {
		cfg.Capacity = def.Capacity
	}
	if cfg.KeepCapacity <= 0 {
		cfg.KeepCapacity = def.KeepCapacity
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = def.SlowThreshold
	}
	return &TraceStore{
		cfg:  cfg,
		byID: make(map[string]*TraceRecord, cfg.Capacity+cfg.KeepCapacity),
		rng:  nextID(),
	}
}

// DefaultTraceStore is the process-wide trace store the HTTP middleware
// records into and the /debug/traces endpoints read from.
var DefaultTraceStore = NewTraceStore(DefaultTraceStoreConfig())

// Record retains a completed trace. Records without a TraceID are
// dropped (nothing could ever look them up).
func (s *TraceStore) Record(rec *TraceRecord) {
	if rec == nil || rec.TraceID == "" {
		return
	}
	rec.DurationMS = float64(rec.Duration.Microseconds()) / 1000

	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Error || rec.Duration >= s.cfg.SlowThreshold {
		if len(s.keep) < s.cfg.KeepCapacity {
			s.keep = append(s.keep, rec)
			s.byID[rec.TraceID] = rec
			return
		}
		s.replace(&s.keep[s.keepPos], rec)
		s.keepPos = (s.keepPos + 1) % s.cfg.KeepCapacity
		return
	}
	s.seen++
	if len(s.sample) < s.cfg.Capacity {
		s.sample = append(s.sample, rec)
		s.byID[rec.TraceID] = rec
		return
	}
	// Reservoir: keep each ordinary trace with probability cap/seen.
	if j := s.randN(s.seen); j < uint64(s.cfg.Capacity) {
		s.replace(&s.sample[j], rec)
	}
}

// replace swaps the record in a slot, keeping the ID index consistent.
func (s *TraceStore) replace(slot **TraceRecord, rec *TraceRecord) {
	if old := *slot; old != nil {
		delete(s.byID, old.TraceID)
	}
	*slot = rec
	s.byID[rec.TraceID] = rec
}

// randN returns a pseudo-random value in [0, n) from a cheap xorshift
// source (sampling quality, not security, is what matters here).
func (s *TraceStore) randN(n uint64) uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x % n
}

// Get returns the retained trace with the given trace ID.
func (s *TraceStore) Get(traceID string) (*TraceRecord, bool) {
	s.mu.Lock()
	rec, ok := s.byID[traceID]
	s.mu.Unlock()
	return rec, ok
}

// List returns retained traces matching the filter, newest first.
func (s *TraceStore) List(f TraceFilter) []*TraceRecord {
	limit := f.Limit
	if limit <= 0 || limit > s.cfg.Capacity+s.cfg.KeepCapacity {
		limit = 50
	}
	s.mu.Lock()
	out := make([]*TraceRecord, 0, len(s.keep)+len(s.sample))
	for _, tier := range [][]*TraceRecord{s.keep, s.sample} {
		for _, rec := range tier {
			if rec == nil {
				continue
			}
			if f.Route != "" && rec.Route != f.Route {
				continue
			}
			if rec.Duration < f.MinDuration {
				continue
			}
			if f.ErrorsOnly && !rec.Error {
				continue
			}
			out = append(out, rec)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Len returns the number of retained traces across both tiers.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	n := len(s.keep) + len(s.sample)
	s.mu.Unlock()
	return n
}

// Reset drops all retained traces (for tests).
func (s *TraceStore) Reset() {
	s.mu.Lock()
	s.keep, s.sample, s.keepPos, s.seen = nil, nil, 0, 0
	s.byID = make(map[string]*TraceRecord, s.cfg.Capacity+s.cfg.KeepCapacity)
	s.mu.Unlock()
}
