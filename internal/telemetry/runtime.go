package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// processStart anchors the uptime gauge.
var processStart = time.Now()

// memCache caches one runtime.ReadMemStats sample per second so a
// scrape touching several runtime gauges stops the world once, not once
// per gauge.
var memCache struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func memStats() runtime.MemStats {
	memCache.mu.Lock()
	defer memCache.mu.Unlock()
	if memCache.at.IsZero() || time.Since(memCache.at) > time.Second {
		runtime.ReadMemStats(&memCache.ms)
		memCache.at = time.Now()
	}
	return memCache.ms
}

var runtimeOnce sync.Once

// RegisterRuntimeMetrics installs process runtime gauges (goroutines,
// heap, GC pause, GOMAXPROCS, uptime) on the Default registry. Values
// are sampled at scrape time via gauge callbacks; repeated calls are
// no-ops.
func RegisterRuntimeMetrics() {
	runtimeOnce.Do(func() {
		RegisterFamily("resil_runtime_goroutines", "gauge",
			"Live goroutines at scrape time.")
		RegisterFamily("resil_runtime_heap_alloc_bytes", "gauge",
			"Heap bytes in use at scrape time.")
		RegisterFamily("resil_runtime_heap_sys_bytes", "gauge",
			"Heap bytes obtained from the OS.")
		RegisterFamily("resil_runtime_gc_runs_total", "counter",
			"Completed garbage collection cycles.")
		RegisterFamily("resil_runtime_gc_pause_seconds_total", "counter",
			"Cumulative stop-the-world GC pause time.")
		RegisterFamily("resil_runtime_gomaxprocs", "gauge",
			"GOMAXPROCS at scrape time.")
		RegisterFamily("resil_process_uptime_seconds", "gauge",
			"Seconds since process start.")

		GetOrCreateGaugeFunc("resil_runtime_goroutines", func() float64 {
			return float64(runtime.NumGoroutine())
		})
		GetOrCreateGaugeFunc("resil_runtime_heap_alloc_bytes", func() float64 {
			return float64(memStats().HeapAlloc)
		})
		GetOrCreateGaugeFunc("resil_runtime_heap_sys_bytes", func() float64 {
			return float64(memStats().HeapSys)
		})
		GetOrCreateGaugeFunc("resil_runtime_gc_runs_total", func() float64 {
			return float64(memStats().NumGC)
		})
		GetOrCreateGaugeFunc("resil_runtime_gc_pause_seconds_total", func() float64 {
			return float64(memStats().PauseTotalNs) / 1e9
		})
		GetOrCreateGaugeFunc("resil_runtime_gomaxprocs", func() float64 {
			return float64(runtime.GOMAXPROCS(0))
		})
		GetOrCreateGaugeFunc("resil_process_uptime_seconds", func() float64 {
			return time.Since(processStart).Seconds()
		})
	})
}

// RuntimeSnapshot is the JSON view of the runtime gauges for /v1/stats.
type RuntimeSnapshot struct {
	Goroutines       int     `json:"goroutines"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes     uint64  `json:"heap_sys_bytes"`
	GCRuns           uint32  `json:"gc_runs"`
	GCPauseTotalSecs float64 `json:"gc_pause_total_seconds"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
}

// SnapshotRuntime samples the runtime gauges for the JSON stats view.
func SnapshotRuntime() RuntimeSnapshot {
	ms := memStats()
	return RuntimeSnapshot{
		Goroutines:       runtime.NumGoroutine(),
		HeapAllocBytes:   ms.HeapAlloc,
		HeapSysBytes:     ms.HeapSys,
		GCRuns:           ms.NumGC,
		GCPauseTotalSecs: float64(ms.PauseTotalNs) / 1e9,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		UptimeSeconds:    time.Since(processStart).Seconds(),
	}
}
