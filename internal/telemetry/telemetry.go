// Package telemetry is the repo's dependency-free observability core: a
// concurrency-safe metrics registry (atomic counters, gauges, and
// fixed-bucket histograms) with Prometheus text-format exposition, plus
// lightweight request tracing (request IDs and spans carried through
// context.Context).
//
// Metrics are identified by their full exposition name, labels included:
//
//	c := telemetry.GetOrCreateCounter(`resil_fits_total{model="quadratic"}`)
//	c.Inc()
//
// Families (the name before the label braces) carry optional HELP text
// and a TYPE, registered once with RegisterFamily. Exposition groups
// metrics by family, sorted, so output is deterministic and valid
// Prometheus text format.
//
// Every metric operation on a resolved handle is lock-free: counters and
// gauges are one atomic op, histogram observation is one atomic add per
// bucket plus an atomic add for the count and a CAS loop for the float
// sum. Resolving a handle (GetOrCreate*) takes a read lock on the name
// table; hot paths should resolve once and hold the pointer.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can expose. writeExposition appends
// one or more exposition lines for the metric under its full name.
type metric interface {
	writeExposition(b *strings.Builder, fullName string)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Set overwrites the count. Prometheus counters must not decrease in
// production; Set exists so tests can reset process-global counters.
func (c *Counter) Set(v uint64) { c.v.Store(v) }

func (c *Counter) writeExposition(b *strings.Builder, fullName string) {
	b.WriteString(fullName)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is a settable float value.
type Gauge struct {
	bits atomic.Uint64
	// fn, when non-nil, is called at exposition time instead of reading
	// the stored value (see GetOrCreateGaugeFunc).
	fn func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (calling the callback for func gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) writeExposition(b *strings.Builder, fullName string) {
	b.WriteString(fullName)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

// family holds exposition metadata for one metric family.
type family struct {
	typ  string // "counter", "gauge", "histogram", or "untyped"
	help string
}

// Registry is a set of named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	metrics  map[string]metric
	families map[string]family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  map[string]metric{},
		families: map[string]family{},
	}
}

// Default is the process-wide registry used by the package-level
// helpers and served by Handler.
var Default = NewRegistry()

// familyOf splits a full metric name into its family (the part before
// the label braces).
func familyOf(fullName string) string {
	if i := strings.IndexByte(fullName, '{'); i >= 0 {
		return fullName[:i]
	}
	return fullName
}

// validateName rejects names that would produce invalid exposition
// output. It checks the family name shape and, when labels are present,
// that the braces are balanced and terminal.
func validateName(fullName string) error {
	fam := familyOf(fullName)
	if fam == "" {
		return fmt.Errorf("telemetry: empty metric name %q", fullName)
	}
	for i, r := range fam {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q", fullName)
		}
	}
	if len(fam) != len(fullName) {
		rest := fullName[len(fam):]
		if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
			return fmt.Errorf("telemetry: malformed labels in %q", fullName)
		}
	}
	return nil
}

// RegisterFamily attaches TYPE and HELP metadata to a metric family.
// Registering the same family again overwrites the metadata.
func (r *Registry) RegisterFamily(name, typ, help string) {
	r.mu.Lock()
	r.families[name] = family{typ: typ, help: help}
	r.mu.Unlock()
}

// getOrCreate returns the metric registered under fullName, creating it
// with mk when absent. It panics if the existing metric has a different
// concrete type or the name is invalid — both are programming errors at
// instrumentation sites, not runtime conditions.
func (r *Registry) getOrCreate(fullName string, mk func() metric) metric {
	r.mu.RLock()
	m, ok := r.metrics[fullName]
	r.mu.RUnlock()
	if ok {
		return m
	}
	if err := validateName(fullName); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[fullName]; ok {
		return m
	}
	m = mk()
	r.metrics[fullName] = m
	return m
}

// GetOrCreateCounter returns the counter registered under fullName,
// creating it when absent.
func (r *Registry) GetOrCreateCounter(fullName string) *Counter {
	m := r.getOrCreate(fullName, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", fullName, m))
	}
	return c
}

// GetOrCreateGauge returns the gauge registered under fullName, creating
// it when absent.
func (r *Registry) GetOrCreateGauge(fullName string) *Gauge {
	m := r.getOrCreate(fullName, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", fullName, m))
	}
	return g
}

// GetOrCreateGaugeFunc registers a gauge whose value is computed by fn
// at exposition time (e.g. runtime.NumGoroutine).
func (r *Registry) GetOrCreateGaugeFunc(fullName string, fn func() float64) *Gauge {
	m := r.getOrCreate(fullName, func() metric { return &Gauge{fn: fn} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", fullName, m))
	}
	return g
}

// GetOrCreateHistogram returns the histogram registered under fullName,
// creating it with the given bucket upper bounds when absent (see
// NewHistogram for the bounds contract).
func (r *Registry) GetOrCreateHistogram(fullName string, bounds []float64) *Histogram {
	m := r.getOrCreate(fullName, func() metric { return NewHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", fullName, m))
	}
	return h
}

// Package-level conveniences against the Default registry.

// GetOrCreateCounter returns a counter from the Default registry.
func GetOrCreateCounter(fullName string) *Counter { return Default.GetOrCreateCounter(fullName) }

// GetOrCreateGauge returns a gauge from the Default registry.
func GetOrCreateGauge(fullName string) *Gauge { return Default.GetOrCreateGauge(fullName) }

// GetOrCreateGaugeFunc returns a callback gauge from the Default registry.
func GetOrCreateGaugeFunc(fullName string, fn func() float64) *Gauge {
	return Default.GetOrCreateGaugeFunc(fullName, fn)
}

// GetOrCreateHistogram returns a histogram from the Default registry.
func GetOrCreateHistogram(fullName string, bounds []float64) *Histogram {
	return Default.GetOrCreateHistogram(fullName, bounds)
}

// RegisterFamily attaches TYPE/HELP metadata in the Default registry.
func RegisterFamily(name, typ, help string) { Default.RegisterFamily(name, typ, help) }

// Labels formats label pairs into the canonical `k1="v1",k2="v2"` form
// with values escaped, for building full metric names:
//
//	name := "resil_fit_duration_seconds{" + telemetry.Labels("model", m.Name()) + "}"
//
// It panics on an odd number of arguments (an instrumentation-site bug).
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("telemetry: Labels requires key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float in exposition form, including the
// Prometheus spellings of the non-finite values.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// EachHistogram visits every histogram registered under the family, in
// name order. The JSON stats view uses it to compute per-route
// quantiles without the registry leaking its metric table.
func (r *Registry) EachHistogram(family string, fn func(fullName string, h *Histogram)) {
	for _, name := range r.snapshotNames() {
		if familyOf(name) != family {
			continue
		}
		r.mu.RLock()
		m := r.metrics[name]
		r.mu.RUnlock()
		if h, ok := m.(*Histogram); ok {
			fn(name, h)
		}
	}
}

// EachHistogram visits the Default registry's histograms of a family.
func EachHistogram(family string, fn func(fullName string, h *Histogram)) {
	Default.EachHistogram(family, fn)
}

// LabeledExemplar ties a bucket exemplar to the metric that holds it.
type LabeledExemplar struct {
	Metric string `json:"metric"`
	BucketExemplar
}

// ExemplarsInFamily returns every exemplar currently held by the
// family's histograms, in metric-name order — the JSON twin of the
// OpenMetrics exemplar suffixes on /metrics.
func (r *Registry) ExemplarsInFamily(family string) []LabeledExemplar {
	var out []LabeledExemplar
	r.EachHistogram(family, func(name string, h *Histogram) {
		for _, e := range h.Exemplars() {
			out = append(out, LabeledExemplar{Metric: name, BucketExemplar: e})
		}
	})
	return out
}

// ExemplarsInFamily returns the Default registry's exemplars of a family.
func ExemplarsInFamily(family string) []LabeledExemplar {
	return Default.ExemplarsInFamily(family)
}

// LabelValue extracts one label's value from a full exposition name
// ("" when absent); a convenience for consumers walking EachHistogram.
func LabelValue(fullName, key string) string {
	i := strings.Index(fullName, key+`="`)
	if i < 0 {
		return ""
	}
	rest := fullName[i+len(key)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// snapshotNames returns all registered metric names, sorted so that
// metrics of one family are contiguous and ordering is deterministic.
func (r *Registry) snapshotNames() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
