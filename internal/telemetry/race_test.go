package telemetry

import (
	"io"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentWritersDuringScrape hammers one registry with concurrent
// counter increments, gauge sets, histogram observations, and metric
// creation while repeatedly scraping the exposition — the exact mix a
// live /metrics endpoint sees. Run under -race; the assertions check
// that nothing is lost and every scrape parses as complete lines.
func TestConcurrentWritersDuringScrape(t *testing.T) {
	r := NewRegistry()
	r.RegisterFamily("hammer_total", "counter", "hammered")
	r.RegisterFamily("hammer_seconds", "histogram", "hammered")

	const (
		writers   = 8
		perWriter = 2000
	)
	c := r.GetOrCreateCounter("hammer_total")
	h := r.GetOrCreateHistogram("hammer_seconds", []float64{0.25, 0.5, 1})
	g := r.GetOrCreateGauge("hammer_gauge")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i%4) / 4.0)
				g.Add(1)
				if i%200 == 0 {
					// Metric creation races against scrapes too.
					r.GetOrCreateCounter("hammer_total{writer=\"" + string(rune('a'+w)) + "\"}").Inc()
				}
			}
		}(w)
	}

	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 200; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
			out := b.String()
			if out != "" && !strings.HasSuffix(out, "\n") {
				t.Errorf("scrape %d: truncated output", i)
				return
			}
			for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				if !strings.Contains(line, " ") {
					t.Errorf("scrape %d: malformed line %q", i, line)
					return
				}
			}
		}
	}()

	wg.Wait()
	<-scrapeDone

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	// Histogram sum: each writer contributes perWriter/4 * (0+0.25+0.5+0.75).
	wantSum := float64(writers) * float64(perWriter) / 4 * 1.5
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
	if got := g.Value(); got != float64(writers*perWriter) {
		t.Errorf("gauge = %g, want %d", got, writers*perWriter)
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("final scrape: %v", err)
	}
}
