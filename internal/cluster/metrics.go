package cluster

import (
	"sync/atomic"

	"resilience/internal/telemetry"
)

func init() {
	telemetry.RegisterFamily("resil_cluster_peers", "gauge",
		"Configured peer-set size (including this node).")
	telemetry.RegisterFamily("resil_cluster_forwards_total", "counter",
		"Session requests forwarded to their owning peer, by op and outcome.")
	telemetry.RegisterFamily("resil_cluster_forward_duration_seconds", "histogram",
		"Latency of one forwarded peer hop, by op.")
	telemetry.RegisterFamily("resil_cluster_redirects_total", "counter",
		"Typed redirect responses returned for sessions this node does not own.")
}

// metrics holds the unlabeled handles (the peer-table gauge, the
// redirect counter) plus plain atomic aggregates backing the /v1/stats
// cluster section — the labeled per-op series feed /metrics and summing
// a labeled family for a JSON snapshot is not worth the scan.
var metrics = struct {
	peers         *telemetry.Gauge
	redirects     *telemetry.Counter
	forwardsOK    atomic.Uint64
	forwardErrors atomic.Uint64
}{
	peers:     telemetry.GetOrCreateGauge("resil_cluster_peers"),
	redirects: telemetry.GetOrCreateCounter("resil_cluster_redirects_total"),
}

// forwardMetrics pairs the handles for one (op, outcome) forward cell.
type forwardMetrics struct {
	requests  *telemetry.Counter
	aggregate *atomic.Uint64
	latency   *telemetry.Histogram
}

func (m forwardMetrics) observe(seconds float64, traceID string) {
	m.requests.Inc()
	m.aggregate.Add(1)
	m.latency.ObserveWithExemplar(seconds, traceID)
}

// forwardMetricsFor resolves the handles for an op/outcome pair. Ops
// come from the fixed protocol vocabulary and outcome is ok|error, so
// cardinality is bounded.
func forwardMetricsFor(op, outcome string) forwardMetrics {
	agg := &metrics.forwardsOK
	if outcome == "error" {
		agg = &metrics.forwardErrors
	}
	return forwardMetrics{
		requests: telemetry.GetOrCreateCounter("resil_cluster_forwards_total{" +
			telemetry.Labels("op", op, "outcome", outcome) + "}"),
		aggregate: agg,
		latency: telemetry.GetOrCreateHistogram("resil_cluster_forward_duration_seconds{"+
			telemetry.Labels("op", op)+"}", telemetry.DurationBuckets()),
	}
}

// CountRedirect records one typed-redirect response; the server's
// session routes call it when they answer with an ownership redirect
// instead of forwarding (or when the forward to the owner failed).
func CountRedirect() { metrics.redirects.Inc() }
