package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilience/internal/telemetry"
	"resilience/internal/transport/binary"
)

// DefaultForwardTimeout bounds one peer hop. It must cover a cold fit
// on the owner (loadgen's SLO gate is hundreds of milliseconds), while
// failing fast enough that a dead peer turns into a typed redirect
// instead of a hung client.
const DefaultForwardTimeout = 10 * time.Second

// Config describes this node's place in the peer set.
type Config struct {
	// Self is this node's own binary-transport address as it appears in
	// Peers. Ownership of a session is "Owner(id) == Self".
	Self string
	// Peers is the full static membership (binary addresses, self
	// included). Every node must be configured with the same table.
	Peers []string
	// VNodes is the virtual-node count per peer (DefaultVNodes if <= 0).
	VNodes int
	// ForwardTimeout bounds one forwarded request
	// (DefaultForwardTimeout if <= 0).
	ForwardTimeout time.Duration
}

// Cluster computes session ownership and forwards non-owned requests to
// their owner over the binary transport. Safe for concurrent use.
type Cluster struct {
	ring    *Ring
	self    string
	timeout time.Duration

	mu       sync.Mutex
	clients  map[string]*binary.Client
	draining bool

	inflight sync.WaitGroup // outbound forwards in flight
}

// New validates cfg and builds the cluster view. Self must appear in
// the peer table — a node that is not in its own membership would
// forward every request and own nothing.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	found := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer table %v", cfg.Self, ring.Peers())
	}
	timeout := cfg.ForwardTimeout
	if timeout <= 0 {
		timeout = DefaultForwardTimeout
	}
	c := &Cluster{
		ring:    ring,
		self:    cfg.Self,
		timeout: timeout,
		clients: make(map[string]*binary.Client),
	}
	metrics.peers.Set(float64(len(ring.Peers())))
	return c, nil
}

// Self returns this node's own peer address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the full membership in sorted order.
func (c *Cluster) Peers() []string { return c.ring.Peers() }

// Owner returns the peer address owning sessionID.
func (c *Cluster) Owner(sessionID string) string { return c.ring.Owner(sessionID) }

// IsLocal reports whether this node owns sessionID.
func (c *Cluster) IsLocal(sessionID string) bool { return c.ring.Owner(sessionID) == c.self }

// client returns (lazily creating) the pooled client for peer.
func (c *Cluster) client(peer string) (*binary.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, fmt.Errorf("cluster: shutting down")
	}
	cl, ok := c.clients[peer]
	if !ok {
		cl = binary.NewClient(peer)
		c.clients[peer] = cl
	}
	return cl, nil
}

// Forward sends one operation to peer over the binary transport,
// propagating the request ID and trace context so the hop stitches into
// the caller's trace, and recording a cluster.forward span plus the
// resil_cluster_* forward metrics. The returned status/body carry the
// owner's response verbatim (a JSON-model tree).
func (c *Cluster) Forward(ctx context.Context, peer, op string, body any) (int, any, error) {
	cl, err := c.client(peer)
	if err != nil {
		return 0, nil, err
	}
	c.inflight.Add(1)
	defer c.inflight.Done()

	ctx, span := telemetry.StartSpanCtx(ctx, "cluster.forward")
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()

	reqID := telemetry.RequestID(ctx)
	traceparent := ""
	if tid := telemetry.TraceID(ctx); tid != "" {
		traceparent = telemetry.FormatTraceparent(tid, span.SpanID())
	}
	start := time.Now()
	status, respBody, err := cl.Do(fctx, op, reqID, traceparent, body)
	elapsed := time.Since(start)

	outcome := "ok"
	spanStatus := ""
	if err != nil {
		outcome = "error"
		spanStatus = "forward failed"
	}
	span.EndStatus(spanStatus,
		telemetry.Str("peer", peer),
		telemetry.Str("op", op),
		telemetry.Int("status", status),
	)
	forwardMetricsFor(op, outcome).observe(elapsed.Seconds(), telemetry.TraceID(ctx))
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: forward %s to %s: %w", op, peer, err)
	}
	return status, respBody, nil
}

// Shutdown stops new forwards, waits for in-flight ones to finish (or
// ctx to expire), and closes the peer clients.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	clients := c.clients
	c.clients = make(map[string]*binary.Client)
	c.mu.Unlock()

	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	for _, cl := range clients {
		cl.Close()
	}
	return err
}

// StatsSnapshot is the cluster section of GET /v1/stats.
type StatsSnapshot struct {
	Self          string   `json:"self"`
	Peers         []string `json:"peers"`
	Forwards      uint64   `json:"forwards"`
	ForwardErrors uint64   `json:"forward_errors"`
	Redirects     uint64   `json:"redirects"`
}

// Stats returns the current cluster counters.
func (c *Cluster) Stats() StatsSnapshot {
	errs := metrics.forwardErrors.Load()
	return StatsSnapshot{
		Self:          c.self,
		Peers:         c.ring.Peers(),
		Forwards:      metrics.forwardsOK.Load() + errs,
		ForwardErrors: errs,
		Redirects:     metrics.redirects.Value(),
	}
}
