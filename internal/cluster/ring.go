// Package cluster turns a set of independent resil-server processes
// into a peer set that shards streaming sessions among themselves. The
// membership model is deliberately minimal — a static `-peers` table,
// identical on every node — so ownership is a pure function every node
// computes locally: no gossip, no coordination, no split-brain. A node
// answers requests for sessions it owns and forwards the rest to the
// owner over the binary transport, propagating request ID and
// traceparent so a cross-node request remains one trace.
//
// The fit cache needs no cluster awareness: it is keyed by a canonical
// digest of (series, model), so a forwarded request fits exactly the
// cache entry the owner would have produced for a direct request.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per peer. 128 points per peer
// keeps the ownership share of each node within a few percent of fair
// for realistic peer counts while the ring stays small enough that a
// lookup is one binary search over a few hundred points.
const DefaultVNodes = 128

// ringPoint is one virtual node: a hash position owned by a peer.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring maps keys (session IDs) onto peers by consistent hashing with
// virtual nodes. Immutable after construction; safe for concurrent use.
type Ring struct {
	points []ringPoint
	peers  []string
}

// NewRing builds a ring over peers (binary-transport addresses) with
// vnodes virtual nodes each (DefaultVNodes when <= 0). Peer order does
// not matter: every permutation builds the identical ring, which is the
// property that lets each node compute ownership independently.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	sorted := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)

	r := &Ring{
		points: make([]ringPoint, 0, len(sorted)*vnodes),
		peers:  sorted,
	}
	for _, p := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(p, i), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break on peer so the ring is deterministic even in the
		// (astronomically unlikely) event of a 64-bit hash collision.
		return a.peer < b.peer
	})
	return r, nil
}

// Owner returns the peer owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Peers returns the membership in sorted order.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// pointHash positions one virtual node. The vnode index is separated
// from the peer name by a NUL so "peer1"+vnode 10 can never collide
// with a peer literally named "peer110".
func pointHash(peer string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vnode)))
	return mix64(h.Sum64())
}

// keyHash positions a session ID on the ring.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a has poor avalanche on
// short, similar inputs — peer addresses differing in one digit produce
// clustered ring positions and a badly skewed key distribution; the
// finalizer spreads them uniformly.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
