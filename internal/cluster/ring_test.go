package cluster

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"resilience/internal/transport"
	"resilience/internal/transport/binary"
)

// sessionIDs mints n deterministic IDs shaped like the stream manager's
// real ones (s-<16 hex>), so the distribution test measures the hash on
// the key population it will actually see.
func sessionIDs(n int) []string {
	ids := make([]string, n)
	h := uint64(0x9e3779b97f4a7c15)
	for i := range ids {
		// splitmix64 over the index: deterministic, well-mixed bytes.
		z := h + uint64(i)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		ids[i] = fmt.Sprintf("s-%016x", z)
	}
	return ids
}

func peersN(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.0.%d:9443", i+1)
	}
	return peers
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Error("empty peer address accepted")
	}
}

func TestRingOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:1", "n1:1", "n2:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sessionIDs(500) {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("peer order changed ownership of %s", id)
		}
	}
}

// TestRingUniformity: across 10k session IDs and 3 peers, every peer's
// share must be within a reasonable band of fair (1/3). With 128 vnodes
// the observed spread is a few percent; the 25% tolerance guards the
// property without flaking on hash luck.
func TestRingUniformity(t *testing.T) {
	const nIDs = 10000
	for _, nPeers := range []int{2, 3, 5} {
		ring, err := NewRing(peersN(nPeers), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for _, id := range sessionIDs(nIDs) {
			counts[ring.Owner(id)]++
		}
		if len(counts) != nPeers {
			t.Fatalf("%d peers: only %d received keys", nPeers, len(counts))
		}
		fair := float64(nIDs) / float64(nPeers)
		for peer, n := range counts {
			ratio := float64(n) / fair
			if ratio < 0.75 || ratio > 1.25 {
				t.Errorf("%d peers: %s owns %d keys (%.2f× fair share)", nPeers, peer, n, ratio)
			}
		}
	}
}

// TestRingMinimalMovementOnAdd: adding a peer may move keys only TO the
// new peer; every other key keeps its owner. That is the consistency
// property that makes ring growth cheap.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	base := peersN(3)
	before, err := NewRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	added := "10.0.0.99:9443"
	after, err := NewRing(append(append([]string{}, base...), added), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	ids := sessionIDs(10000)
	for _, id := range ids {
		was, now := before.Owner(id), after.Owner(id)
		if was == now {
			continue
		}
		if now != added {
			t.Fatalf("key %s moved %s -> %s, not to the added peer", id, was, now)
		}
		moved++
	}
	// The new peer should take roughly its fair share (1/4) — and only
	// that. Movement far above fair share would mean reshuffling.
	fair := float64(len(ids)) / 4
	if f := float64(moved) / fair; f < 0.7 || f > 1.3 {
		t.Errorf("add moved %d keys (%.2f× the new peer's fair share)", moved, f)
	}
}

// TestRingMinimalMovementOnRemove: removing a peer must only reassign
// that peer's keys; everything else stays put.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	base := peersN(4)
	before, err := NewRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := base[2]
	after, err := NewRing(append(append([]string{}, base[:2]...), base[3]), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sessionIDs(10000) {
		was, now := before.Owner(id), after.Owner(id)
		if was == removed {
			if now == removed {
				t.Fatalf("key %s still maps to removed peer", id)
			}
			continue
		}
		if was != now {
			t.Fatalf("key %s owned by surviving %s moved to %s", id, was, now)
		}
	}
}

// TestRingDeterministicOwnership hammers Owner from many goroutines
// (meaningful under -race) and asserts every reader computes the same
// owner for the same key — ownership is a pure function of the table.
func TestRingDeterministicOwnership(t *testing.T) {
	ring, err := NewRing(peersN(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := sessionIDs(1000)
	want := make([]string, len(ids))
	for i, id := range ids {
		want[i] = ring.Owner(id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, id := range ids {
				if got := ring.Owner(id); got != want[i] {
					select {
					case errs <- fmt.Errorf("owner(%s) = %s, want %s", id, got, want[i]):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{Self: "x:1", Peers: []string{"a:1", "b:1"}}); err == nil {
		t.Error("self outside peer table accepted")
	}
	if _, err := New(Config{Peers: []string{"a:1"}}); err == nil {
		t.Error("missing self accepted")
	}
	c, err := New(Config{Self: "a:1", Peers: []string{"b:1", "a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Peers(); !reflect.DeepEqual(got, []string{"a:1", "b:1"}) {
		t.Fatalf("peers = %v", got)
	}
	if c.Self() != "a:1" {
		t.Fatalf("self = %q", c.Self())
	}
	// Every session is owned by exactly one peer, and IsLocal agrees
	// with Owner.
	for _, id := range sessionIDs(100) {
		if c.IsLocal(id) != (c.Owner(id) == "a:1") {
			t.Fatalf("IsLocal/Owner disagree for %s", id)
		}
	}
}

// echoHandler answers any op with the op name and echoed body.
type echoHandler struct{}

func (echoHandler) Exec(ctx context.Context, op string, body any) (int, any) {
	return 200, map[string]any{"op": op, "echo": body}
}

func (echoHandler) Stream(ctx context.Context, op string, body any, send func(string, any) error) (int, any) {
	return 404, map[string]any{"error": "no streams here"}
}

func TestClusterForward(t *testing.T) {
	srv := binary.NewServer(echoHandler{}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	peer := ln.Addr().String()

	c, err := New(Config{Self: peer, Peers: []string{peer, "127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	status, body, err := c.Forward(context.Background(), peer, transport.OpSessionGet,
		map[string]any{"id": "s-abc"})
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	m, _ := body.(map[string]any)
	if m["op"] != transport.OpSessionGet {
		t.Fatalf("body = %#v", body)
	}

	// A dead peer is a transport error, not a hang.
	deadCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, _, err := c.Forward(deadCtx, "127.0.0.1:1", transport.OpSessionGet, nil); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}

	st := c.Stats()
	if st.Forwards != 2 || st.ForwardErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Forward(context.Background(), peer, transport.OpSessionGet, nil); err == nil {
		t.Fatal("forward after shutdown succeeded")
	}
}
