// Package report renders the reproduction's outputs: aligned text and
// markdown tables for Tables I–IV, CSV export, and ASCII line plots with
// confidence bands for Figures 1–6.
package report

import (
	"errors"
	"fmt"
	"strings"
)

// Table is a simple column-oriented table with a header row.
type Table struct {
	headers []string
	rows    [][]string
}

// ErrShape indicates a row whose width disagrees with the header.
var ErrShape = errors.New("report: row width does not match header")

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; its width must match the header.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("%w: %d cells for %d columns", ErrShape, len(cells), len(t.headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// MustAddRow appends a row and panics on width mismatch; for use with
// statically-known row shapes.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(t.headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the 8-decimal precision the paper's tables use.
func F(v float64) string {
	return fmt.Sprintf("%.8f", v)
}

// Pct formats a fraction as a percentage with two decimals, e.g. 0.9583
// renders as "95.83%".
func Pct(v float64) string {
	return fmt.Sprintf("%.2f%%", 100*v)
}
