package report

import (
	"encoding/xml"
	"strings"
	"testing"
)

func demoPlot(t *testing.T) *Plot {
	t.Helper()
	p := NewPlot("Figure: demo <fit> & band", 0, 0)
	p.SetLabels("months", "index")
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{1, 0.95, 0.9, 0.92, 0.97, 1.01}
	if err := p.AddSeries("data", 'o', xs, ys); err != nil {
		t.Fatal(err)
	}
	fit := []float64{1, 0.96, 0.91, 0.91, 0.96, 1.0}
	if err := p.AddSeries("fit", '*', xs, fit); err != nil {
		t.Fatal(err)
	}
	lo := make([]float64, len(fit))
	hi := make([]float64, len(fit))
	for i := range fit {
		lo[i], hi[i] = fit[i]-0.02, fit[i]+0.02
	}
	if err := p.SetBand(xs, lo, hi); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSVGIsWellFormedXML(t *testing.T) {
	out := demoPlot(t).SVG(0, 0)
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestSVGContainsExpectedElements(t *testing.T) {
	out := demoPlot(t).SVG(800, 500)
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="800" height="500"`,
		"<polyline", // series lines
		"<polygon",  // band
		"<circle",   // point markers
		"confidence band",
		"demo &lt;fit&gt; &amp; band", // escaped title
		"months",
		"rotate(-90", // y label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestSVGEmptyPlot(t *testing.T) {
	p := NewPlot("empty", 0, 0)
	out := p.SVG(0, 0)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot SVG: %s", out)
	}
	if !strings.Contains(out, "</svg>") {
		t.Error("unterminated SVG")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	p := NewPlot("flat", 0, 0)
	if err := p.AddSeries("const", '*', []float64{1, 2}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	out := p.SVG(0, 0)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("degenerate range produced NaN/Inf coordinates:\n%s", out)
	}
}

func TestSVGLargeSeriesSkipsMarkers(t *testing.T) {
	p := NewPlot("big", 0, 0)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i % 7)
	}
	if err := p.AddSeries("dense", '.', xs, ys); err != nil {
		t.Fatal(err)
	}
	out := p.SVG(0, 0)
	if strings.Contains(out, "<circle") {
		t.Error("dense series should not draw per-point markers")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Errorf("xmlEscape = %q", got)
	}
}
