package report

import (
	"fmt"
	"math"
	"strings"
)

// _svgPalette holds the line colors assigned to series in order.
var _svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
}

// SVG renders the plot as a standalone SVG document of the given pixel
// size (zero selects 760×480). The same series and confidence band added
// for the ASCII rendering are drawn with axes, ticks, a legend, and a
// shaded band, producing publication-style versions of the paper's
// figures.
func (p *Plot) SVG(width, height int) string {
	if width <= 0 {
		width = 760
	}
	if height <= 0 {
		height = 480
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	if len(p.series) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif">no data</text>`+"\n",
			width/2, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	const (
		marginLeft   = 64.0
		marginRight  = 16.0
		marginTop    = 40.0
		marginBottom = 56.0
	)
	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom

	xMin, xMax, yMin, yMax := p.dataRange()
	toX := func(x float64) float64 {
		return marginLeft + (x-xMin)/(xMax-xMin)*plotW
	}
	toY := func(y float64) float64 {
		return marginTop + (yMax-y)/(yMax-yMin)*plotH
	}

	// Title.
	if p.title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="22" text-anchor="middle" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
			marginLeft+plotW/2, xmlEscape(p.title))
	}

	// Confidence band under everything else.
	if p.band != nil && len(p.band.xs) > 1 {
		var pts strings.Builder
		for i := range p.band.xs {
			fmt.Fprintf(&pts, "%.2f,%.2f ", toX(p.band.xs[i]), toY(p.band.hi[i]))
		}
		for i := len(p.band.xs) - 1; i >= 0; i-- {
			fmt.Fprintf(&pts, "%.2f,%.2f ", toX(p.band.xs[i]), toY(p.band.lo[i]))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="#bbbbbb" fill-opacity="0.45" stroke="none"/>`+"\n",
			strings.TrimSpace(pts.String()))
	}

	// Axes frame and ticks.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="black"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)
	const ticks = 5
	for i := 0; i <= ticks; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/ticks
		px := toX(fx)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px, marginTop+plotH, px, marginTop+plotH+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			px, marginTop+plotH+20, trimFloat(fx))
		fy := yMin + (yMax-yMin)*float64(i)/ticks
		py := toY(fy)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			marginLeft-5, py, marginLeft, py)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginLeft-8, py+4, trimFloat(fy))
	}

	// Axis labels.
	if p.xLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginLeft+plotW/2, float64(height)-12, xmlEscape(p.xLabel))
	}
	if p.yLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			marginTop+plotH/2, marginTop+plotH/2, xmlEscape(p.yLabel))
	}

	// Series polylines.
	for si, s := range p.series {
		color := _svgPalette[si%len(_svgPalette)]
		var pts strings.Builder
		for i := range s.xs {
			fmt.Fprintf(&pts, "%.2f,%.2f ", toX(s.xs[i]), toY(s.ys[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pts.String()), color)
		// Point markers when the series is sparse enough to read them.
		if len(s.xs) <= 100 {
			for i := range s.xs {
				fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="2" fill="%s"/>`+"\n",
					toX(s.xs[i]), toY(s.ys[i]), color)
			}
		}
	}

	// Legend, top-right inside the frame.
	legendX := marginLeft + plotW - 220
	legendY := marginTop + 12.0
	for si, s := range p.series {
		color := _svgPalette[si%len(_svgPalette)]
		y := legendY + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			legendX, y, legendX+22, y, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			legendX+28, y+4, xmlEscape(s.name))
	}
	if p.band != nil {
		y := legendY + float64(len(p.series))*16
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="22" height="8" fill="#bbbbbb" fill-opacity="0.45"/>`+"\n",
			legendX, y-4)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">confidence band</text>`+"\n",
			legendX+28, y+4)
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// dataRange computes padded plot ranges across all series and the band.
func (p *Plot) dataRange() (xMin, xMax, yMin, yMax float64) {
	xMin, xMax = math.Inf(1), math.Inf(-1)
	yMin, yMax = math.Inf(1), math.Inf(-1)
	consider := func(x, y float64) {
		xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
		yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
	}
	for _, s := range p.series {
		for i := range s.xs {
			consider(s.xs[i], s.ys[i])
		}
	}
	if p.band != nil {
		for i := range p.band.xs {
			consider(p.band.xs[i], p.band.lo[i])
			consider(p.band.xs[i], p.band.hi[i])
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	pad := (yMax - yMin) * 0.05
	return xMin, xMax, yMin - pad, yMax + pad
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}

// trimFloat formats an axis tick without trailing noise.
func trimFloat(v float64) string {
	return fmt.Sprintf("%.4g", v)
}
