package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tbl := NewTable("name", "value")
	if err := tbl.AddRow("alpha", "1.5"); err != nil {
		t.Fatal(err)
	}
	tbl.MustAddRow("beta-long-name", "2")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "beta-long-name") {
		t.Errorf("row: %q", lines[3])
	}
	// All data rows align: the value column starts at the same offset.
	if strings.Index(lines[2], "1.5") != strings.Index(lines[3], "2") {
		t.Error("columns not aligned")
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRowWidthMismatch(t *testing.T) {
	tbl := NewTable("a", "b")
	if err := tbl.AddRow("only-one"); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on mismatch")
		}
	}()
	tbl.MustAddRow("x", "y", "z")
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.MustAddRow("1", "2")
	md := tbl.Markdown()
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n"
	if md != want {
		t.Errorf("Markdown = %q, want %q", md, want)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.MustAddRow("1,5", `say "hi"`)
	got := tbl.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(0.00227675); got != "0.00227675" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.9583333); got != "95.83%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestPlotRendersSeriesAndBand(t *testing.T) {
	p := NewPlot("demo", 40, 10)
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 0.9, 0.8, 0.9, 1}
	if err := p.AddSeries("data", 'o', xs, ys); err != nil {
		t.Fatal(err)
	}
	lo := []float64{0.95, 0.85, 0.75, 0.85, 0.95}
	hi := []float64{1.05, 0.95, 0.85, 0.95, 1.05}
	if err := p.SetBand(xs, lo, hi); err != nil {
		t.Fatal(err)
	}
	p.SetLabels("months", "index")
	out := p.String()
	for _, want := range []string{"demo", "o data", ". confidence band", "x: months"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, ".") {
		t.Error("plot grid missing markers")
	}
}

func TestPlotValidation(t *testing.T) {
	p := NewPlot("", 0, 0)
	if err := p.AddSeries("bad", 'x', []float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadSeries) {
		t.Errorf("mismatch: %v", err)
	}
	if err := p.AddSeries("empty", 'x', nil, nil); !errors.Is(err, ErrBadSeries) {
		t.Errorf("empty: %v", err)
	}
	if err := p.SetBand([]float64{1}, []float64{1}, nil); !errors.Is(err, ErrBadSeries) {
		t.Errorf("band: %v", err)
	}
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	p := NewPlot("flat", 20, 5)
	if err := p.AddSeries("constant", '*', []float64{2, 2.0000001}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not rendered:\n%s", out)
	}
	// Single point: both ranges degenerate.
	q := NewPlot("point", 20, 5)
	if err := q.AddSeries("pt", '#', []float64{3}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if out := q.String(); !strings.Contains(out, "#") {
		t.Errorf("point not rendered:\n%s", out)
	}
}
