package report

import (
	"strings"
	"testing"
)

func TestHTMLReportStructure(t *testing.T) {
	r := NewHTMLReport("Paper <Reproduction> & Results")
	r.AddHeading("Table I")
	r.AddParagraph("Both models fit V/U data; neither fits W/L.")
	tbl := NewTable("model", "r2adj")
	tbl.MustAddRow("quadratic", "0.97")
	tbl.MustAddRow(`comp<eting> "risks"`, "-0.5")
	r.AddTable(tbl)
	r.AddPre("ascii | figure")
	p := NewPlot("fig", 0, 0)
	if err := p.AddSeries("s", 'o', []float64{0, 1}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	r.AddPlot(p, 400, 300)

	out := r.String()
	checks := []string{
		"<!DOCTYPE html>",
		"<title>Paper &lt;Reproduction&gt; &amp; Results</title>",
		"<h1>Paper &lt;Reproduction&gt; &amp; Results</h1>",
		"<h2>Table I</h2>",
		"<p>Both models fit V/U data; neither fits W/L.</p>",
		"<th>model</th>",
		"<td>quadratic</td>",
		"comp&lt;eting&gt; &#34;risks&#34;", // escaped cell
		"<pre>ascii | figure</pre>",
		`<svg xmlns="http://www.w3.org/2000/svg" width="400" height="300"`,
		"</html>",
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHTMLReportEmpty(t *testing.T) {
	out := NewHTMLReport("empty").String()
	if !strings.Contains(out, "<h1>empty</h1>") || !strings.Contains(out, "</html>") {
		t.Errorf("empty report malformed:\n%s", out)
	}
}
