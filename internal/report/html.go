package report

import (
	"fmt"
	"html"
	"strings"
)

// HTMLReport assembles a standalone HTML document from a sequence of
// sections: prose, tables, and plots (embedded as inline SVG). It backs
// `resil report`, which renders the full paper reproduction as a single
// shareable file.
type HTMLReport struct {
	title    string
	sections []string
}

// NewHTMLReport creates a report with the given document title.
func NewHTMLReport(title string) *HTMLReport {
	return &HTMLReport{title: title}
}

// AddHeading appends a section heading.
func (r *HTMLReport) AddHeading(text string) {
	r.sections = append(r.sections, "<h2>"+html.EscapeString(text)+"</h2>")
}

// AddParagraph appends a prose paragraph.
func (r *HTMLReport) AddParagraph(text string) {
	r.sections = append(r.sections, "<p>"+html.EscapeString(text)+"</p>")
}

// AddTable appends a table rendered as an HTML <table>.
func (r *HTMLReport) AddTable(t *Table) {
	var b strings.Builder
	b.WriteString("<table>\n<thead><tr>")
	for _, h := range t.headers {
		b.WriteString("<th>" + html.EscapeString(h) + "</th>")
	}
	b.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range t.rows {
		b.WriteString("<tr>")
		for _, c := range row {
			b.WriteString("<td>" + html.EscapeString(c) + "</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody>\n</table>")
	r.sections = append(r.sections, b.String())
}

// AddPlot appends a plot as inline SVG.
func (r *HTMLReport) AddPlot(p *Plot, width, height int) {
	r.sections = append(r.sections, `<div class="figure">`+p.SVG(width, height)+"</div>")
}

// AddPre appends preformatted text (for ASCII artifacts).
func (r *HTMLReport) AddPre(text string) {
	r.sections = append(r.sections, "<pre>"+html.EscapeString(text)+"</pre>")
}

// String renders the complete document.
func (r *HTMLReport) String() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(r.title))
	b.WriteString(`<style>
body { font-family: Georgia, serif; max-width: 920px; margin: 2rem auto; padding: 0 1rem; color: #222; }
h1 { border-bottom: 2px solid #222; padding-bottom: 0.3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: 0.9rem; font-family: "SF Mono", Menlo, monospace; }
th, td { border: 1px solid #999; padding: 0.25rem 0.6rem; text-align: right; }
th { background: #eee; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f6f6f6; padding: 0.8rem; overflow-x: auto; font-size: 0.78rem; }
.figure { margin: 1.2rem 0; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(r.title))
	for _, s := range r.sections {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}
