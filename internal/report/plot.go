package report

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Plot is an ASCII line chart used to regenerate the paper's figures in a
// terminal. Multiple series share one set of axes; an optional shaded
// band renders confidence intervals.
type Plot struct {
	title  string
	width  int
	height int
	series []plotSeries
	band   *plotBand
	yLabel string
	xLabel string
}

type plotSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

type plotBand struct {
	xs, lo, hi []float64
}

// ErrBadSeries indicates mismatched or empty plot input.
var ErrBadSeries = errors.New("report: bad plot series")

// NewPlot creates an ASCII plot canvas. Width and height are in character
// cells; zero selects 72×20.
func NewPlot(title string, width, height int) *Plot {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	return &Plot{title: title, width: width, height: height}
}

// SetLabels sets the axis labels.
func (p *Plot) SetLabels(x, y string) {
	p.xLabel, p.yLabel = x, y
}

// AddSeries adds a named line rendered with the given marker character.
func (p *Plot) AddSeries(name string, marker byte, xs, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("%w: %d xs, %d ys", ErrBadSeries, len(xs), len(ys))
	}
	p.series = append(p.series, plotSeries{
		name: name, marker: marker,
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
	})
	return nil
}

// SetBand attaches a shaded confidence band (rendered with '.').
func (p *Plot) SetBand(xs, lo, hi []float64) error {
	if len(xs) == 0 || len(xs) != len(lo) || len(xs) != len(hi) {
		return fmt.Errorf("%w: band lengths %d/%d/%d", ErrBadSeries, len(xs), len(lo), len(hi))
	}
	p.band = &plotBand{
		xs: append([]float64(nil), xs...),
		lo: append([]float64(nil), lo...),
		hi: append([]float64(nil), hi...),
	}
	return nil
}

// String renders the plot.
func (p *Plot) String() string {
	if len(p.series) == 0 {
		return p.title + "\n(no data)\n"
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	consider := func(x, y float64) {
		xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
		yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
	}
	for _, s := range p.series {
		for i := range s.xs {
			consider(s.xs[i], s.ys[i])
		}
	}
	if p.band != nil {
		for i := range p.band.xs {
			consider(p.band.xs[i], p.band.lo[i])
			consider(p.band.xs[i], p.band.hi[i])
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// Pad the y range slightly so extremes do not sit on the frame.
	pad := (yMax - yMin) * 0.05
	yMin -= pad
	yMax += pad

	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xMin) / (xMax - xMin) * float64(p.width-1)))
		return clampInt(c, 0, p.width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(p.height-1)))
		return clampInt(r, 0, p.height-1)
	}

	// Band first so series draw over it.
	if p.band != nil {
		for i := range p.band.xs {
			c := col(p.band.xs[i])
			rLo, rHi := row(p.band.lo[i]), row(p.band.hi[i])
			if rLo < rHi {
				rLo, rHi = rHi, rLo
			}
			for r := rHi; r <= rLo; r++ {
				grid[r][c] = '.'
			}
		}
	}
	for _, s := range p.series {
		for i := range s.xs {
			grid[row(s.ys[i])][col(s.xs[i])] = s.marker
		}
	}

	var b strings.Builder
	if p.title != "" {
		b.WriteString(p.title + "\n")
	}
	yTopLabel := fmt.Sprintf("%.4g", yMax)
	yBotLabel := fmt.Sprintf("%.4g", yMin)
	labelWidth := maxInt(len(yTopLabel), len(yBotLabel))
	for r := 0; r < p.height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |", labelWidth, yTopLabel)
		case p.height - 1:
			fmt.Fprintf(&b, "%*s |", labelWidth, yBotLabel)
		default:
			fmt.Fprintf(&b, "%*s |", labelWidth, "")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", labelWidth+1) + "+" + strings.Repeat("-", p.width) + "\n")
	xLeft := fmt.Sprintf("%.4g", xMin)
	xRight := fmt.Sprintf("%.4g", xMax)
	gap := p.width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	b.WriteString(strings.Repeat(" ", labelWidth+2) + xLeft + strings.Repeat(" ", gap) + xRight + "\n")
	if p.xLabel != "" || p.yLabel != "" {
		fmt.Fprintf(&b, "x: %s    y: %s\n", p.xLabel, p.yLabel)
	}
	// Legend.
	for _, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", s.marker, s.name)
	}
	if p.band != nil {
		b.WriteString("  . confidence band\n")
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
