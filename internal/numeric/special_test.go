package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaRegPKnownValues(t *testing.T) {
	// Reference values computed from the identity P(1, x) = 1 - e^{-x}
	// and published tables for other shapes.
	tests := []struct {
		name string
		a, x float64
		want float64
	}{
		{name: "a=1 x=0", a: 1, x: 0, want: 0},
		{name: "a=1 x=1", a: 1, x: 1, want: 1 - math.Exp(-1)},
		{name: "a=1 x=5", a: 1, x: 5, want: 1 - math.Exp(-5)},
		{name: "a=2 x=2", a: 2, x: 2, want: 1 - 3*math.Exp(-2)},
		{name: "a=0.5 x=0.25", a: 0.5, x: 0.25, want: math.Erf(0.5)},
		{name: "a=0.5 x=4", a: 0.5, x: 4, want: math.Erf(2)},
		{name: "a=3 x=10", a: 3, x: 10, want: 1 - math.Exp(-10)*(1+10+50)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := GammaRegP(tt.a, tt.x)
			if err != nil {
				t.Fatalf("GammaRegP(%g, %g) error: %v", tt.a, tt.x, err)
			}
			if !EqualWithin(got, tt.want, 1e-12) {
				t.Errorf("GammaRegP(%g, %g) = %.15g, want %.15g", tt.a, tt.x, got, tt.want)
			}
		})
	}
}

func TestGammaRegPInvalidInputs(t *testing.T) {
	tests := []struct {
		name string
		a, x float64
	}{
		{name: "a zero", a: 0, x: 1},
		{name: "a negative", a: -2, x: 1},
		{name: "x negative", a: 1, x: -1},
		{name: "a NaN", a: math.NaN(), x: 1},
		{name: "x NaN", a: 1, x: math.NaN()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := GammaRegP(tt.a, tt.x); err == nil {
				t.Errorf("GammaRegP(%g, %g): want error, got nil", tt.a, tt.x)
			}
			if _, err := GammaRegQ(tt.a, tt.x); err == nil {
				t.Errorf("GammaRegQ(%g, %g): want error, got nil", tt.a, tt.x)
			}
		})
	}
}

func TestGammaRegComplement(t *testing.T) {
	// P + Q must equal 1 across a grid spanning both algorithm branches.
	for _, a := range []float64{0.3, 0.5, 1, 2, 5, 10, 50} {
		for _, x := range []float64{0.01, 0.5, 1, 2, 5, 10, 60} {
			p, err := GammaRegP(a, x)
			if err != nil {
				t.Fatalf("P(%g,%g): %v", a, x, err)
			}
			q, err := GammaRegQ(a, x)
			if err != nil {
				t.Fatalf("Q(%g,%g): %v", a, x, err)
			}
			if !EqualWithin(p+q, 1, 1e-10) {
				t.Errorf("P+Q at a=%g x=%g: %.15g", a, x, p+q)
			}
		}
	}
}

func TestGammaRegPMonotoneInX(t *testing.T) {
	// Property: for fixed a, P(a, x) is nondecreasing in x and in [0, 1].
	f := func(aSeed, x1Seed, x2Seed uint32) bool {
		a := 0.1 + float64(aSeed%1000)/50          // (0.1, 20.1]
		x1 := float64(x1Seed%10000) / 100          // [0, 100)
		x2 := x1 + float64(x2Seed%10000)/100 + 0.1 // > x1
		p1, err1 := GammaRegP(a, x1)
		p2, err2 := GammaRegP(a, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= -1e-15 && p2 <= 1+1e-12 && p2 >= p1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12, B(0.5,0.5)=π.
	tests := []struct {
		a, b, want float64
	}{
		{1, 1, 0},
		{2, 3, math.Log(1.0 / 12.0)},
		{0.5, 0.5, math.Log(math.Pi)},
	}
	for _, tt := range tests {
		got, err := LogBeta(tt.a, tt.b)
		if err != nil {
			t.Fatalf("LogBeta(%g,%g): %v", tt.a, tt.b, err)
		}
		if !EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("LogBeta(%g,%g) = %g, want %g", tt.a, tt.b, got, tt.want)
		}
	}
	if _, err := LogBeta(0, 1); err == nil {
		t.Error("LogBeta(0,1): want error")
	}
}

func TestLog1pExp(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, math.Log(2)},
		{1, math.Log(1 + math.E)},
		{100, 100},
		{-100, math.Exp(-100)},
	}
	for _, tt := range tests {
		if got := Log1pExp(tt.x); !EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("Log1pExp(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
}
