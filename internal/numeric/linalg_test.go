package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSolveLinear(t *testing.T) {
	tests := []struct {
		name string
		a    [][]float64
		b    []float64
		want []float64
	}{
		{
			name: "identity",
			a:    [][]float64{{1, 0}, {0, 1}},
			b:    []float64{3, -4},
			want: []float64{3, -4},
		},
		{
			name: "2x2",
			a:    [][]float64{{2, 1}, {1, 3}},
			b:    []float64{5, 10},
			want: []float64{1, 3},
		},
		{
			name: "3x3 needs pivoting",
			a:    [][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}},
			b:    []float64{8, 4, 4},
			want: []float64{1, 2, 3},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SolveLinear(tt.a, tt.b)
			if err != nil {
				t.Fatalf("SolveLinear: %v", err)
			}
			for i := range tt.want {
				if !EqualWithin(got[i], tt.want[i], 1e-10) {
					t.Errorf("x[%d] = %g, want %g", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSolveLinearSingular(t *testing.T) {
	_, err := SolveLinear([][]float64{{1, 2}, {2, 4}}, []float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Errorf("singular matrix: want ErrSingular, got %v", err)
	}
}

func TestSolveLinearBadShape(t *testing.T) {
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("row mismatch: want error")
	}
	if _, err := SolveLinear([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Error("non-square: want error")
	}
}

func TestSolveLinearRoundTrip(t *testing.T) {
	// Property: for random diagonally-dominant A and x, solving A·(Ax)
	// recovers x.
	f := func(seed uint32) bool {
		rng := seed
		next := func() float64 {
			rng = rng*1664525 + 1013904223
			return float64(rng%2000)/1000 - 1 // [-1, 1)
		}
		const n = 4
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = next()
			}
			a[i][i] += float64(n) // diagonal dominance => nonsingular
			x[i] = next() * 10
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !EqualWithin(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatTMulAndVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ata := MatTMul(a)
	want := [][]float64{{35, 44}, {44, 56}}
	for i := range want {
		for j := range want[i] {
			if ata[i][j] != want[i][j] {
				t.Errorf("AᵀA[%d][%d] = %g, want %g", i, j, ata[i][j], want[i][j])
			}
		}
	}
	atv := MatTVec(a, []float64{1, 1, 1})
	if atv[0] != 9 || atv[1] != 12 {
		t.Errorf("Aᵀv = %v, want [9 12]", atv)
	}
	if MatTMul(nil) != nil || MatTVec(nil, nil) != nil {
		t.Error("empty inputs should return nil")
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
}

func TestCompareHelpers(t *testing.T) {
	if !EqualWithin(1, 1+1e-12, 1e-9) {
		t.Error("EqualWithin near-equal failed")
	}
	if EqualWithin(1, 2, 1e-9) {
		t.Error("EqualWithin distinct values should differ")
	}
	if EqualWithin(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must not compare equal")
	}
	if !EqualWithin(1e20, 1e20*(1+1e-12), 1e-9) {
		t.Error("relative comparison at large scale failed")
	}
	if !EqualWithinAbs(5, 5.05, 0.1) || EqualWithinAbs(5, 5.2, 0.1) {
		t.Error("EqualWithinAbs misbehaves")
	}
	if IsFinite(math.Inf(1)) || IsFinite(math.NaN()) || !IsFinite(0) {
		t.Error("IsFinite misbehaves")
	}
	if AllFinite([]float64{1, math.NaN()}) || !AllFinite([]float64{1, 2}) {
		t.Error("AllFinite misbehaves")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	if Sign(3) != 1 || Sign(-3) != -1 || Sign(0) != 0 || Sign(math.NaN()) != 0 {
		t.Error("Sign misbehaves")
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp(lo>hi) should panic")
		}
	}()
	Clamp(0, 1, -1)
}
