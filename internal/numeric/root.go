package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned by the root finders when the supplied interval
// does not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. tol is the absolute width of the final interval.
func Bisect(f Func, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 || math.IsNaN(fa) || math.IsNaN(fb) {
		return math.NaN(), fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200; i++ {
		mid := a + (b-a)/2
		fm := f(mid)
		if fm == 0 || (b-a)/2 < tol {
			return mid, nil
		}
		if fa*fm < 0 {
			b = mid
		} else {
			a, fa = mid, fm
		}
	}
	return a + (b-a)/2, nil
}

// BrentRoot finds a root of f in [a, b] using Brent's method, which
// combines bisection, secant, and inverse quadratic interpolation.
// f(a) and f(b) must have opposite signs.
func BrentRoot(f Func, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 || math.IsNaN(fa) || math.IsNaN(fb) {
		return math.NaN(), fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	const machEps = 2.220446049250313e-16
	c, fc := b, fb
	var d, e float64
	for i := 0; i < 200; i++ {
		if (fb > 0 && fc > 0) || (fb < 0 && fc < 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, fa = b, fb
			b, fb = c, fc
			c, fc = a, fa
		}
		tol1 := 2*machEps*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm >= 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
	}
	return b, nil
}

// BracketRoot expands outward from [a, b] by a growth factor until the
// interval brackets a sign change of f, or gives up after maxExpand
// expansions. It returns the bracketing interval.
func BracketRoot(f Func, a, b float64, maxExpand int) (lo, hi float64, err error) {
	if a >= b {
		return 0, 0, errors.New("numeric: BracketRoot requires a < b")
	}
	if maxExpand <= 0 {
		maxExpand = 50
	}
	const growth = 1.6
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if !math.IsNaN(fa) && !math.IsNaN(fb) && fa*fb <= 0 {
			return a, b, nil
		}
		if math.Abs(fa) < math.Abs(fb) {
			a += growth * (a - b)
			fa = f(a)
		} else {
			b += growth * (b - a)
			fb = f(b)
		}
	}
	return 0, 0, ErrNoBracket
}
