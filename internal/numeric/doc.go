// Package numeric provides the low-level numerical kernels shared by the
// rest of the library: special functions (regularized incomplete gamma),
// numerical differentiation, scalar root finding, and floating-point
// comparison helpers.
//
// Everything in this package is implemented on top of the Go standard
// library's math package; no third-party numerical code is used.
package numeric
