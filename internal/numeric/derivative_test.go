package numeric

import (
	"math"
	"testing"
)

// TestJacobianRelativeStepScales pins the MINPACK-style relative step:
// parameters spanning twelve orders of magnitude must each get a
// forward-difference step proportionate to their own size, keeping the
// Jacobian accurate where a fixed absolute step would either wipe out a
// tiny parameter or vanish against a huge one.
func TestJacobianRelativeStepScales(t *testing.T) {
	// r(x) = [x0·x1, x0², sin(x1·1e-6)] at x0 = 1e-6, x1 = 1e6:
	// exact Jacobian rows are [x1, x0], [2x0, 0], [0, 1e-6·cos(1)].
	r := func(x []float64) ([]float64, error) {
		return []float64{x[0] * x[1], x[0] * x[0], math.Sin(x[1] * 1e-6)}, nil
	}
	x := []float64{1e-6, 1e6}
	r0, _ := r(x)
	jac := [][]float64{make([]float64, 2), make([]float64, 2), make([]float64, 2)}
	if err := Jacobian(r, x, r0, jac); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{1e6, 1e-6},
		{2e-6, 0},
		{0, 1e-6 * math.Cos(1)},
	}
	for i := range want {
		for j := range want[i] {
			diff := math.Abs(jac[i][j] - want[i][j])
			scale := math.Max(math.Abs(want[i][j]), 1e-9)
			if diff/scale > 1e-6 {
				t.Errorf("jac[%d][%d] = %g, want %g (relative error %g)",
					i, j, jac[i][j], want[i][j], diff/scale)
			}
		}
	}
}

// TestForwardStepProperties pins the step construction itself: strictly
// positive, exactly representable (x+h−x == h), and proportional to |x|
// away from zero.
func TestForwardStepProperties(t *testing.T) {
	for _, x := range []float64{0, 1e-12, 1e-3, 1, 1e3, 1e12, -5, -1e-9} {
		h := forwardStep(x)
		if h <= 0 {
			t.Fatalf("forwardStep(%g) = %g, want > 0", x, h)
		}
		if exact := (x + h) - x; exact != h {
			t.Errorf("forwardStep(%g): x+h-x = %g, want exactly %g", x, exact, h)
		}
		if x != 0 {
			ratio := h / math.Abs(x)
			if ratio < 1e-9 || ratio > 1e-6 {
				t.Errorf("forwardStep(%g)/|x| = %g outside the relative-step regime", x, ratio)
			}
		}
	}
}
