package numeric

import (
	"errors"
	"math"
)

// Func is a scalar function of one variable.
type Func func(x float64) float64

// Derivative approximates f'(x) with a central difference using a step
// scaled to x. It is accurate to O(h²) for smooth f.
func Derivative(f Func, x float64) float64 {
	h := stepFor(x)
	return (f(x+h) - f(x-h)) / (2 * h)
}

// DerivativeRichardson approximates f'(x) with Richardson extrapolation of
// central differences, giving O(h⁴) accuracy for smooth f.
func DerivativeRichardson(f Func, x float64) float64 {
	h := stepFor(x)
	d1 := (f(x+h) - f(x-h)) / (2 * h)
	d2 := (f(x+h/2) - f(x-h/2)) / h
	return (4*d2 - d1) / 3
}

// SecondDerivative approximates f”(x) with the standard three-point
// central stencil.
func SecondDerivative(f Func, x float64) float64 {
	h := math.Sqrt(stepFor(x))
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Gradient fills grad with the central-difference gradient of f at x.
// It returns an error if the two slices have different lengths.
func Gradient(f func([]float64) float64, x, grad []float64) error {
	if len(x) != len(grad) {
		return errors.New("numeric: Gradient slice length mismatch")
	}
	xi := make([]float64, len(x))
	copy(xi, x)
	for i := range x {
		h := stepFor(x[i])
		orig := xi[i]
		xi[i] = orig + h
		fp := f(xi)
		xi[i] = orig - h
		fm := f(xi)
		xi[i] = orig
		grad[i] = (fp - fm) / (2 * h)
	}
	return nil
}

// Jacobian computes the m×n Jacobian of a vector-valued function
// r: Rⁿ → Rᵐ at x by forward differences, writing row i of ∂r_i/∂x_j into
// jac[i]. The residual value r(x) is passed in as r0 to avoid recomputing
// it. jac must have m rows of length n.
func Jacobian(r func([]float64) ([]float64, error), x, r0 []float64, jac [][]float64) error {
	if len(jac) != len(r0) {
		return errors.New("numeric: Jacobian row count mismatch")
	}
	xi := make([]float64, len(x))
	copy(xi, x)
	for j := range x {
		h := forwardStep(x[j])
		orig := xi[j]
		xi[j] = orig + h
		rp, err := r(xi)
		xi[j] = orig
		if err != nil {
			return err
		}
		if len(rp) != len(r0) {
			return errors.New("numeric: Jacobian residual length changed")
		}
		for i := range rp {
			if len(jac[i]) != len(x) {
				return errors.New("numeric: Jacobian column count mismatch")
			}
			jac[i][j] = (rp[i] - r0[i]) / h
		}
	}
	return nil
}

// stepFor picks a central-difference step proportional to the magnitude
// of x, bounded away from zero so that x == 0 still gets a usable step.
func stepFor(x float64) float64 {
	const base = 1e-6
	return base * math.Max(1, math.Abs(x))
}

// forwardStep picks the MINPACK-style forward-difference step √ε·|x|
// (√ε when x is zero), the optimum that balances truncation against
// round-off for O(h)-accurate differences. Scaling by |x| instead of
// flooring at 1 keeps the Jacobian accurate for parameters spanning
// orders of magnitude — a Weibull scale near 100 and a rate near 1e-3
// both get a step proportionate to their own size. The returned step is
// re-derived from the rounded sum so that x+h − x is exactly h.
func forwardStep(x float64) float64 {
	const sqrtEps = 1.4901161193847656e-08 // √(machine epsilon)
	h := sqrtEps * math.Abs(x)
	if h == 0 {
		h = sqrtEps
	}
	if exact := (x + h) - x; exact > 0 {
		h = exact
	}
	return h
}
