package numeric

import (
	"errors"
	"math"
	"testing"
)

func TestBisect(t *testing.T) {
	tests := []struct {
		name string
		f    Func
		a, b float64
		want float64
	}{
		{name: "linear", f: func(x float64) float64 { return x - 3 }, a: 0, b: 10, want: 3},
		{name: "quadratic", f: func(x float64) float64 { return x*x - 2 }, a: 0, b: 2, want: math.Sqrt2},
		{name: "cosine", f: math.Cos, a: 0, b: 3, want: math.Pi / 2},
		{name: "root at endpoint a", f: func(x float64) float64 { return x }, a: 0, b: 1, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Bisect(tt.f, tt.a, tt.b, 1e-12)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if !EqualWithinAbs(got, tt.want, 1e-10) {
				t.Errorf("Bisect = %.15g, want %.15g", got, tt.want)
			}
		})
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBrentRoot(t *testing.T) {
	tests := []struct {
		name string
		f    Func
		a, b float64
		want float64
	}{
		{name: "linear", f: func(x float64) float64 { return 2*x - 7 }, a: 0, b: 10, want: 3.5},
		{name: "cubic", f: func(x float64) float64 { return x*x*x - 8 }, a: 0, b: 5, want: 2},
		{name: "transcendental", f: func(x float64) float64 { return math.Exp(x) - 2 }, a: 0, b: 2, want: math.Ln2},
		{name: "flat tail", f: func(x float64) float64 { return math.Tanh(x - 4) }, a: 0, b: 10, want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := BrentRoot(tt.f, tt.a, tt.b, 1e-13)
			if err != nil {
				t.Fatalf("BrentRoot: %v", err)
			}
			if !EqualWithinAbs(got, tt.want, 1e-9) {
				t.Errorf("BrentRoot = %.15g, want %.15g", got, tt.want)
			}
		})
	}
}

func TestBrentRootNoBracket(t *testing.T) {
	_, err := BrentRoot(func(x float64) float64 { return 1 + x*x }, -3, 3, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBracketRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	lo, hi, err := BracketRoot(f, 0, 1, 50)
	if err != nil {
		t.Fatalf("BracketRoot: %v", err)
	}
	if f(lo)*f(hi) > 0 {
		t.Errorf("interval [%g, %g] does not bracket", lo, hi)
	}
	if _, _, err := BracketRoot(func(float64) float64 { return 1 }, 0, 1, 5); !errors.Is(err, ErrNoBracket) {
		t.Errorf("constant function: want ErrNoBracket, got %v", err)
	}
	if _, _, err := BracketRoot(f, 2, 1, 5); err == nil {
		t.Error("a >= b: want error")
	}
}

func TestDerivative(t *testing.T) {
	tests := []struct {
		name string
		f    Func
		x    float64
		want float64
	}{
		{name: "sin at 0", f: math.Sin, x: 0, want: 1},
		{name: "exp at 1", f: math.Exp, x: 1, want: math.E},
		{name: "square at 3", f: func(x float64) float64 { return x * x }, x: 3, want: 6},
		{name: "log at 2", f: math.Log, x: 2, want: 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Derivative(tt.f, tt.x); !EqualWithin(got, tt.want, 1e-6) {
				t.Errorf("Derivative = %g, want %g", got, tt.want)
			}
			if got := DerivativeRichardson(tt.f, tt.x); !EqualWithin(got, tt.want, 1e-8) {
				t.Errorf("DerivativeRichardson = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestSecondDerivative(t *testing.T) {
	f := func(x float64) float64 { return x * x * x }
	if got := SecondDerivative(f, 2); !EqualWithin(got, 12, 1e-4) {
		t.Errorf("SecondDerivative(x³, 2) = %g, want 12", got)
	}
}

func TestGradient(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[1] }
	grad := make([]float64, 2)
	if err := Gradient(f, []float64{2, 5}, grad); err != nil {
		t.Fatalf("Gradient: %v", err)
	}
	if !EqualWithin(grad[0], 4, 1e-6) || !EqualWithin(grad[1], 3, 1e-6) {
		t.Errorf("Gradient = %v, want [4 3]", grad)
	}
	if err := Gradient(f, []float64{1}, grad); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestJacobian(t *testing.T) {
	r := func(x []float64) ([]float64, error) {
		return []float64{x[0] * x[1], x[0] + 2*x[1]}, nil
	}
	x := []float64{3, 4}
	r0, _ := r(x)
	jac := [][]float64{make([]float64, 2), make([]float64, 2)}
	if err := Jacobian(r, x, r0, jac); err != nil {
		t.Fatalf("Jacobian: %v", err)
	}
	want := [][]float64{{4, 3}, {1, 2}}
	for i := range want {
		for j := range want[i] {
			if !EqualWithin(jac[i][j], want[i][j], 1e-5) {
				t.Errorf("jac[%d][%d] = %g, want %g", i, j, jac[i][j], want[i][j])
			}
		}
	}
}
