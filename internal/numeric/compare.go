package numeric

import "math"

// DefaultTol is the default relative tolerance used by the comparison
// helpers when callers have no better problem-specific choice.
const DefaultTol = 1e-9

// EqualWithin reports whether a and b are equal to within tol using a
// combined absolute/relative criterion: |a-b| <= tol*max(1, |a|, |b|).
// NaN is never equal to anything, matching IEEE semantics.
func EqualWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// EqualWithinAbs reports whether |a-b| <= tol. NaN compares unequal.
func EqualWithinAbs(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// IsFinite reports whether x is neither NaN nor an infinity.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// AllFinite reports whether every element of xs is finite.
func AllFinite(xs []float64) bool {
	for _, x := range xs {
		if !IsFinite(x) {
			return false
		}
	}
	return true
}

// Clamp returns x restricted to the interval [lo, hi]. It panics if
// lo > hi since that indicates a programming error, not a data error.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("numeric: Clamp called with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// Sign returns -1, 0, or +1 according to the sign of x. Sign(NaN) is 0.
func Sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
