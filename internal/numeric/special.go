package numeric

import (
	"errors"
	"math"
)

// ErrNoConverge is returned when an iterative routine exhausts its
// iteration budget before meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// GammaRegP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// It uses the series expansion for x < a+1 and the continued fraction for
// x >= a+1, the standard split that keeps both representations rapidly
// convergent.
func GammaRegP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a):
		return math.NaN(), errors.New("numeric: GammaRegP requires a > 0")
	case x < 0 || math.IsNaN(x):
		return math.NaN(), errors.New("numeric: GammaRegP requires x >= 0")
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeriesP(a, x)
		return p, err
	}
	q, err := gammaContinuedQ(a, x)
	return 1 - q, err
}

// GammaRegQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a):
		return math.NaN(), errors.New("numeric: GammaRegQ requires a > 0")
	case x < 0 || math.IsNaN(x):
		return math.NaN(), errors.New("numeric: GammaRegQ requires x >= 0")
	case x == 0:
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeriesP(a, x)
		return 1 - p, err
	}
	return gammaContinuedQ(a, x)
}

// gammaSeriesP evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeriesP(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// gammaContinuedQ evaluates Q(a,x) by Lentz's modified continued fraction,
// valid for x >= a+1.
func gammaContinuedQ(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b) for a, b > 0.
func LogBeta(a, b float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return math.NaN(), errors.New("numeric: LogBeta requires a, b > 0")
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab, nil
}

// Log1pExp computes ln(1 + e^x) without overflow for large x and without
// cancellation for very negative x.
func Log1pExp(x float64) float64 {
	switch {
	case x > 35:
		return x
	case x < -35:
		return math.Exp(x)
	default:
		return math.Log1p(math.Exp(x))
	}
}

// Expm1Safe is math.Expm1 with NaN passthrough; it exists so callers in this
// module consistently route through one helper when computing 1-e^{-x}
// style expressions in CDFs.
func Expm1Safe(x float64) float64 {
	return math.Expm1(x)
}
