package numeric

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("numeric: matrix is singular")

// SolveLinear solves the dense n×n system A x = b by Gaussian elimination
// with partial pivoting. A and b are not modified. It is intended for the
// small systems that arise in Levenberg–Marquardt normal equations.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, errors.New("numeric: SolveLinear dimension mismatch")
	}
	// Work on copies: an augmented matrix [A | b].
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("numeric: SolveLinear matrix is not square")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > maxAbs {
				pivot, maxAbs = r, abs
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
		if !IsFinite(x[i]) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// MatTMul computes Aᵀ·A for an m×n matrix A, returning an n×n matrix.
func MatTMul(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	n := len(a[0])
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for _, row := range a {
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i][j] += row[i] * row[j]
			}
		}
	}
	return out
}

// MatTVec computes Aᵀ·v for an m×n matrix A and length-m vector v,
// returning a length-n vector.
func MatTVec(a [][]float64, v []float64) []float64 {
	if len(a) == 0 {
		return nil
	}
	n := len(a[0])
	out := make([]float64, n)
	for i, row := range a {
		for j := 0; j < n; j++ {
			out[j] += row[j] * v[i]
		}
	}
	return out
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
