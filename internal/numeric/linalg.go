package numeric

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("numeric: matrix is singular")

// SolveLinear solves the dense n×n system A x = b by Gaussian elimination
// with partial pivoting. A and b are not modified. It is intended for the
// small systems that arise in Levenberg–Marquardt normal equations.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, errors.New("numeric: SolveLinear dimension mismatch")
	}
	// Work on copies: an augmented matrix [A | b].
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("numeric: SolveLinear matrix is not square")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	x := make([]float64, n)
	if err := SolveAugmented(m, x); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveAugmented solves the n×n system encoded as the augmented matrix
// m = [A | b] (n rows of length n+1) by Gaussian elimination with
// partial pivoting, writing the solution into x. m is destroyed. It
// exists so hot paths (the Levenberg–Marquardt damping search) can solve
// into preallocated scratch without any per-solve allocation.
func SolveAugmented(m [][]float64, x []float64) error {
	n := len(x)
	if len(m) != n {
		return errors.New("numeric: SolveAugmented dimension mismatch")
	}
	for i := range m {
		if len(m[i]) != n+1 {
			return errors.New("numeric: SolveAugmented row is not augmented")
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > maxAbs {
				pivot, maxAbs = r, abs
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
		if !IsFinite(x[i]) {
			return ErrSingular
		}
	}
	return nil
}

// MatTMul computes Aᵀ·A for an m×n matrix A, returning an n×n matrix.
func MatTMul(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	n := len(a[0])
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	MatTMulInto(out, a)
	return out
}

// MatTMulInto computes Aᵀ·A into the preallocated n×n matrix dst.
func MatTMulInto(dst [][]float64, a [][]float64) {
	n := len(dst)
	for i := range dst {
		for j := 0; j < n; j++ {
			dst[i][j] = 0
		}
	}
	for _, row := range a {
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				dst[i][j] += row[i] * row[j]
			}
		}
	}
}

// MatTVec computes Aᵀ·v for an m×n matrix A and length-m vector v,
// returning a length-n vector.
func MatTVec(a [][]float64, v []float64) []float64 {
	if len(a) == 0 {
		return nil
	}
	out := make([]float64, len(a[0]))
	MatTVecInto(out, a, v)
	return out
}

// MatTVecInto computes Aᵀ·v into the preallocated length-n vector dst.
func MatTVecInto(dst []float64, a [][]float64, v []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i, row := range a {
		for j := range dst {
			dst[j] += row[j] * v[i]
		}
	}
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
