module resilience

go 1.22
