// Package resilience predicts how systems degrade and recover from
// disruptive events. It implements the models of Silva, Hermosillo
// Hidalgo, Linkov & Fiondella, "Predictive Resilience Modeling" (2022):
// bathtub-shaped hazard functions from reliability engineering and
// mixture-distribution resilience curves, fit by least squares, validated
// with SSE/PMSE/adjusted-R²/confidence-interval coverage, and summarized
// with eight interval-based resilience metrics.
//
// # Quick start
//
//	data, _ := resilience.SeriesFromValues([]float64{1, 0.98, 0.96, 0.97, 0.99, 1.01, 1.02, 1.03})
//	fit, _ := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
//	tr, _ := resilience.RecoveryTime(fit, 1.0, 0) // months until performance regains 1.0
//
// The facade re-exports the library's core types; the implementation
// lives in internal/core and its substrate packages. See DESIGN.md for
// the architecture and EXPERIMENTS.md for the paper reproduction.
package resilience

import (
	"resilience/internal/core"
	"resilience/internal/monitor"
	"resilience/internal/registry"
	"resilience/internal/stat"
	"resilience/internal/timeseries"
)

// Core modeling types, re-exported from internal/core.
type (
	// Model is a parametric resilience-curve family P(t; θ).
	Model = core.Model
	// MixtureModel is the Eq. (7) mixture resilience model.
	MixtureModel = core.MixtureModel
	// CDFFamily is a mixture component family (Exponential, Weibull, …).
	CDFFamily = core.CDFFamily
	// Trend is a mixture transition function a(t).
	Trend = core.Trend
	// FitResult is a fitted model bound to its training data.
	FitResult = core.FitResult
	// FitConfig tunes the least-squares fitting driver.
	FitConfig = core.FitConfig
	// Validation is the fit-and-validate pipeline output.
	Validation = core.Validation
	// ValidateConfig tunes the validation pipeline.
	ValidateConfig = core.ValidateConfig
	// GoF bundles SSE, PMSE, R², adjusted R², AIC, and BIC.
	GoF = core.GoF
	// Band is a per-observation confidence band.
	Band = core.Band
	// Window fixes the time points metrics are computed over.
	Window = core.Window
	// MetricKind identifies one of the eight interval-based metrics.
	MetricKind = core.MetricKind
	// MetricSet maps MetricKind to computed values.
	MetricSet = core.MetricSet
	// MetricsConfig tunes metric integration.
	MetricsConfig = core.MetricsConfig
	// MetricComparison is an actual/predicted/relative-error row.
	MetricComparison = core.MetricComparison
	// CurveShape is the V/U/W/L/J letter classification.
	CurveShape = core.CurveShape
	// PiecewiseCurve is the Sec. II piecewise resilience curve.
	PiecewiseCurve = core.PiecewiseCurve
	// Series is an ordered (time, value) performance series.
	Series = timeseries.Series
)

// Metric kinds, in the row order of the paper's Tables II and IV.
const (
	PerformancePreserved   = core.PerformancePreserved
	PerformanceLost        = core.PerformanceLost
	NormalizedAvgPreserved = core.NormalizedAvgPreserved
	NormalizedAvgLost      = core.NormalizedAvgLost
	PreservedFromMinimum   = core.PreservedFromMinimum
	AvgPreserved           = core.AvgPreserved
	AvgLost                = core.AvgLost
	WeightedAvgPreserved   = core.WeightedAvgPreserved
)

// Integration modes for metric computation.
const (
	// DiscreteSum sums the curve over unit-spaced sample points, matching
	// the paper's monthly tables.
	DiscreteSum = core.DiscreteSum
	// Continuous integrates with adaptive quadrature.
	Continuous = core.Continuous
)

// Curve shapes.
const (
	ShapeV    = core.ShapeV
	ShapeU    = core.ShapeU
	ShapeW    = core.ShapeW
	ShapeL    = core.ShapeL
	ShapeJ    = core.ShapeJ
	ShapeFlat = core.ShapeFlat
)

// Sentinel errors.
var (
	// ErrBadParams indicates invalid model parameters.
	ErrBadParams = core.ErrBadParams
	// ErrBadData indicates unusable input data.
	ErrBadData = core.ErrBadData
	// ErrNoRecovery indicates the curve never reaches the target level.
	ErrNoRecovery = core.ErrNoRecovery
)

// The model registry (internal/registry) is the single definition site
// for the model families the library serves; the facade re-exports its
// catalog so external callers can enumerate, look up, and introspect
// models by name exactly as the HTTP API and CLI do.
type (
	// ModelInfo is one registered model family: canonical name, accepted
	// aliases, family, parameter metadata, capability flags, and its
	// position in the default degradation chain.
	ModelInfo = registry.Entry
	// ModelCapabilities flags which closed-form shortcuts a family
	// implements.
	ModelCapabilities = registry.Capabilities
)

// Model families.
const (
	// FamilyBathtub groups the bathtub-shaped hazard models.
	FamilyBathtub = registry.FamilyBathtub
	// FamilyMixture groups the mixture-distribution models.
	FamilyMixture = registry.FamilyMixture
)

// RegisteredModels returns the full model catalog in its stable public
// order.
func RegisteredModels() []ModelInfo { return registry.All() }

// LookupModel resolves a canonical model name or alias (such as "quad",
// "hjorth", or "wei-exp"), case-insensitively, to its catalog entry.
func LookupModel(name string) (ModelInfo, error) { return registry.Lookup(name) }

// ModelsByFamily returns the catalog entries of one family
// (FamilyBathtub or FamilyMixture) in catalog order.
func ModelsByFamily(family string) []ModelInfo { return registry.ByFamily(family) }

// Quadratic returns the bathtub-shaped quadratic hazard model
// P(t) = α + βt + γt² (Eq. 1).
func Quadratic() Model { return registry.MustLookup("quadratic").Model }

// CompetingRisks returns the competing-risks (Hjorth) bathtub model
// P(t) = 2γt + α/(1+βt) (Eq. 4).
func CompetingRisks() Model { return registry.MustLookup("competing-risks").Model }

// NewMixture builds the paper's mixture model
// P(t) = (1−F₁(t)) + a₂(t)·F₂(t) from a degradation CDF family, a
// recovery CDF family, and a recovery transition trend.
func NewMixture(f1, f2 CDFFamily, a2 Trend) (*MixtureModel, error) {
	return core.NewMixture(f1, f2, a2)
}

// StandardMixtures returns the paper's four mixture combinations
// (Exp-Exp, Wei-Exp, Exp-Wei, Wei-Wei) with a₂(t) = β·ln t, as
// registered in the model catalog.
func StandardMixtures() []*MixtureModel { return registry.Mixtures() }

// Component families and trends for building custom mixtures.
func Exp() CDFFamily          { return core.ExpFamily{} }
func Weibull() CDFFamily      { return core.WeibullFamily{} }
func GammaCDF() CDFFamily     { return core.GammaFamily{} }
func LogNormalCDF() CDFFamily { return core.LogNormalFamily{} }
func LogTrend() Trend         { return core.LogTrend{} }
func LinearTrend() Trend      { return core.LinearTrend{} }
func ConstTrend() Trend       { return core.ConstTrend{} }
func ExpTrend() Trend         { return core.ExpTrend{} }

// NewSeries builds a Series from parallel time and value slices.
func NewSeries(times, values []float64) (*Series, error) {
	return timeseries.NewSeries(times, values)
}

// SeriesFromValues builds a Series with times 0, 1, 2, … (e.g. months
// after the performance peak).
func SeriesFromValues(values []float64) (*Series, error) {
	return timeseries.FromValues(values)
}

// Fit estimates a model's parameters from data by least squares (Eq. 8).
func Fit(m Model, data *Series, cfg FitConfig) (*FitResult, error) {
	return core.Fit(m, data, cfg)
}

// Validate runs the full pipeline: split, fit, score (SSE, PMSE, adjusted
// R²), and measure confidence-interval coverage.
func Validate(m Model, data *Series, cfg ValidateConfig) (*Validation, error) {
	return core.Validate(m, data, cfg)
}

// ConfidenceBand builds the P̂ ± z·σ band of Eqs. (12)–(13).
func ConfidenceBand(f *FitResult, data *Series, alpha float64) (*Band, error) {
	return core.ConfidenceBand(f, data, alpha)
}

// EmpiricalCoverage reports the fraction of observations inside a band.
func EmpiricalCoverage(b *Band, data *Series) (float64, error) {
	return core.EmpiricalCoverage(b, data)
}

// RecoveryTime predicts when the fitted curve regains the given
// performance level (Eqs. 2 and 5, or a numeric solve).
func RecoveryTime(f *FitResult, level, searchHorizon float64) (float64, error) {
	return core.RecoveryTime(f, level, searchHorizon)
}

// ModelMinimum predicts the time of minimum performance t_d.
func ModelMinimum(f *FitResult, horizon float64) (float64, error) {
	return core.ModelMinimum(f, horizon)
}

// AreaUnderCurve integrates the fitted curve (Eqs. 3 and 6 when closed
// forms exist).
func AreaUnderCurve(f *FitResult, t0, t1 float64) (float64, error) {
	return core.AreaUnderCurve(f, t0, t1)
}

// PredictiveWindow builds the Sec. IV predictive metric window.
func PredictiveWindow(data *Series, testStart int, fit *FitResult) (Window, error) {
	return core.PredictiveWindow(data, testStart, fit)
}

// ActualMetrics computes the eight interval-based metrics from data.
func ActualMetrics(data *Series, w Window, cfg MetricsConfig) (MetricSet, error) {
	return core.ActualMetrics(data, w, cfg)
}

// PredictedMetrics computes the eight metrics from a fitted model.
func PredictedMetrics(f *FitResult, w Window, cfg MetricsConfig) (MetricSet, error) {
	return core.PredictedMetrics(f, w, cfg)
}

// CompareMetrics tabulates actual vs predicted metrics with relative
// errors (Eq. 22) for a validation run.
func CompareMetrics(v *Validation, data *Series, cfg MetricsConfig) ([]MetricComparison, error) {
	return core.CompareMetrics(v, data, cfg)
}

// MetricKinds lists the eight metrics in table order.
func MetricKinds() []MetricKind { return core.MetricKinds() }

// ClassifyShape labels a normalized resilience series with its letter
// shape (V, U, W, L, J, or flat).
func ClassifyShape(values []float64) CurveShape { return core.ClassifyShape(values) }

// NewPiecewise builds the Sec. II piecewise resilience curve around a
// model section, scaling it for continuity at the hazard time.
func NewPiecewise(th, tr, before float64, during func(float64) float64) (*PiecewiseCurve, error) {
	return core.NewPiecewise(th, tr, before, during)
}

// Extension types beyond the paper's Sec. II menu (see DESIGN.md):
// changepoint composites for W-shaped events, a four-parameter
// exponential bathtub, residual-bootstrap intervals, model selection
// with rolling-origin cross-validation, and point-based metrics.
type (
	// CompositeModel chains two single-dip models at a fitted
	// changepoint, capturing W-shaped (double-dip) events.
	CompositeModel = core.CompositeModel
	// BootstrapConfig tunes the residual bootstrap.
	BootstrapConfig = core.BootstrapConfig
	// BootstrapResult holds percentile parameter intervals and a
	// pointwise curve band.
	BootstrapResult = core.BootstrapResult
	// SelectConfig tunes model selection.
	SelectConfig = core.SelectConfig
	// SelectionResult ranks candidate models.
	SelectionResult = core.SelectionResult
	// SelectionCriterion picks the ranking score.
	SelectionCriterion = core.SelectionCriterion
	// ModelScore is one candidate's scorecard.
	ModelScore = core.ModelScore
	// PointMetrics are the point-based resilience measures
	// (robustness, rapidity, times, resilience loss).
	PointMetrics = core.PointMetrics
)

// Model-selection criteria.
const (
	ByPMSE = core.ByPMSE
	ByAIC  = core.ByAIC
	ByBIC  = core.ByBIC
	ByCV   = core.ByCV
)

// ExpBathtub returns the four-parameter exponential bathtub extension
// P(t) = α·e^{−βt} + γ·(e^{δt} − 1).
func ExpBathtub() Model { return registry.MustLookup("exp-bathtub").Model }

// NewComposite chains two single-dip models at a changepoint constrained
// to (tauLo, tauHi), for W-shaped events.
func NewComposite(first, second Model, tauLo, tauHi float64) (*CompositeModel, error) {
	return core.NewComposite(first, second, tauLo, tauHi)
}

// Bootstrap runs a residual bootstrap around a fit, producing
// distribution-free parameter intervals and a percentile curve band.
func Bootstrap(f *FitResult, cfg BootstrapConfig) (*BootstrapResult, error) {
	return core.Bootstrap(f, cfg)
}

// SelectModel fits and ranks candidate models on one dataset.
func SelectModel(candidates []Model, data *Series, cfg SelectConfig) (*SelectionResult, error) {
	return core.SelectModel(candidates, data, cfg)
}

// RollingOriginCV computes the expanding-window one-step-ahead mean
// squared prediction error for a model on a dataset.
func RollingOriginCV(m Model, data *Series, minTrain int, fitCfg FitConfig) (float64, error) {
	return core.RollingOriginCV(m, data, minTrain, fitCfg)
}

// ComputePointMetrics evaluates robustness, rapidity, disruption times,
// and the Bruneau resilience loss for an arbitrary curve.
func ComputePointMetrics(curve func(float64) float64, w Window) (PointMetrics, error) {
	return core.ComputePointMetrics(curve, w)
}

// FitPointMetrics evaluates the point-based metrics on a fitted curve.
func FitPointMetrics(f *FitResult, th, horizon, nominal float64) (PointMetrics, error) {
	return core.FitPointMetrics(f, th, horizon, nominal)
}

// Forecast is a set of future-time predictions with an uncertainty band.
type Forecast = core.Forecast

// ForecastAt predicts the fitted curve at the given future times with a
// (1−alpha) band from the training-residual dispersion.
func ForecastAt(f *FitResult, times []float64, alpha float64) (*Forecast, error) {
	return core.ForecastAt(f, times, alpha)
}

// ForecastHorizon predicts the next `steps` points after the training
// window, continuing its sampling interval.
func ForecastHorizon(f *FitResult, steps int, alpha float64) (*Forecast, error) {
	return core.ForecastHorizon(f, steps, alpha)
}

// Online monitoring (internal/monitor): track a live incident and emit
// recovery predictions that sharpen as observations arrive — the
// real-time use case the paper's introduction motivates.
type (
	// Tracker consumes performance observations one at a time and
	// maintains disruption state.
	Tracker = monitor.Tracker
	// TrackerConfig tunes the tracker.
	TrackerConfig = monitor.Config
	// TrackerUpdate is the tracker state after one observation.
	TrackerUpdate = monitor.Update
	// Phase is the disruption lifecycle phase.
	Phase = monitor.Phase
)

// Lifecycle phases.
const (
	PhaseNominal    = monitor.PhaseNominal
	PhaseDegrading  = monitor.PhaseDegrading
	PhaseRecovering = monitor.PhaseRecovering
	PhaseRecovered  = monitor.PhaseRecovered
)

// NewTracker creates an online disruption tracker.
func NewTracker(cfg TrackerConfig) *Tracker { return monitor.NewTracker(cfg) }

// Additional mixture component families beyond the paper's menu.
func LogLogisticCDF() CDFFamily { return core.LogLogisticFamily{} }
func GompertzCDF() CDFFamily    { return core.GompertzFamily{} }

// Scenario analysis and robust estimation extensions.
type (
	// Intervention models a restoration activity that accelerates (or
	// slows) recovery from its start time onward.
	Intervention = core.Intervention
	// ScenarioImpact compares recovery and metrics with and without an
	// intervention.
	ScenarioImpact = core.ScenarioImpact
	// RobustConfig tunes the Huber M-estimator.
	RobustConfig = core.RobustConfig
)

// EvaluateIntervention quantifies a restoration activity applied to a
// fitted curve: recovery-time savings and metric deltas.
func EvaluateIntervention(f *FitResult, iv Intervention, level, horizon float64) (*ScenarioImpact, error) {
	return core.EvaluateIntervention(f, iv, level, horizon)
}

// FitRobust estimates parameters with a Huber M-estimator, capping the
// influence of aberrant observations that distort plain least squares.
func FitRobust(m Model, data *Series, cfg RobustConfig) (*FitResult, error) {
	return core.FitRobust(m, data, cfg)
}

// DMResult is a Diebold–Mariano equal-predictive-accuracy test outcome.
type DMResult = stat.DMResult

// ComparePredictive tests whether two fitted models differ significantly
// in held-out predictive accuracy (negative statistic favors the first).
func ComparePredictive(a, b *FitResult, test *Series) (DMResult, error) {
	return core.ComparePredictive(a, b, test)
}

// ShapeK is the two-sector divergent-recovery classification.
const ShapeK = core.ShapeK

// ClassifyShapePair labels a pair of sector series, detecting the
// K-shaped divergence that needs two curves to describe.
func ClassifyShapePair(a, b []float64) CurveShape {
	return core.ClassifyShapePair(a, b)
}

// ResidualDiagnostics bundles the Eq. 12–13 assumption checks
// (Ljung–Box, Jarque–Bera, Durbin–Watson) with plain-language warnings.
type ResidualDiagnostics = core.ResidualDiagnostics

// DiagnoseResiduals checks whether a fit's residuals satisfy the
// independence and normality assumptions behind the confidence bands.
func DiagnoseResiduals(f *FitResult) (*ResidualDiagnostics, error) {
	return core.DiagnoseResiduals(f)
}
