#!/usr/bin/env bash
# Black-box 3-node cluster chaos smoke against real resil-server
# binaries built with -race: bring up a consistent-hash cluster over a
# static peer table, prove cross-node session forwarding and ownership
# annotations, SLO-gate the binary transport with loadgen the same way
# the HTTP smoke gates HTTP, kill -9 one node and assert the survivors
# keep serving their shards while requests for the dead node's sessions
# come back as typed redirects, replay a dataset onto a survivor with
# `resil stream -transport binary` (the operator recovery move), lint
# the cluster/transport metric families, and SIGTERM the survivors for
# a clean drain.
#
# Requires only the Go toolchain and curl. Exits non-zero on any
# violated assertion.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${RESIL_CLUSTER_PORT:-18200}"
HTTP1=$BASE_PORT;         HTTP2=$((BASE_PORT + 1));  HTTP3=$((BASE_PORT + 2))
BIN1=$((BASE_PORT + 10)); BIN2=$((BASE_PORT + 11));  BIN3=$((BASE_PORT + 12))
NODE1="127.0.0.1:$BIN1";  NODE2="127.0.0.1:$BIN2";   NODE3="127.0.0.1:$BIN3"
PEERS="$NODE1,$NODE2,$NODE3"
WORK="${RESIL_CLUSTER_DIR:-$(mktemp -d)}"
PID1=""; PID2=""; PID3=""

cleanup() {
  for pid in "$PID1" "$PID2" "$PID3"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster_smoke: FAIL: $*" >&2; exit 1; }

wait_ready() { # port
  for _ in $(seq 1 100); do
    if curl -fsS "http://localhost:$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  fail "node on port $1 never became ready (see $WORK/*.log)"
}

# http_status METHOD URL [JSON] -> status in $STATUS, body in $BODY
http_status() {
  local method=$1 url=$2 data=${3:-}
  local args=(-sS -o "$WORK/body.json" -w '%{http_code}' -X "$method" "$url")
  [ -n "$data" ] && args+=(-H 'Content-Type: application/json' -d "$data")
  STATUS=$(curl "${args[@]}")
  BODY=$(cat "$WORK/body.json")
}

json_field() { # key <- extracts "key":"value"
  echo "$1" | grep -o "\"$2\":\"[^\"]*\"" | head -1 | cut -d'"' -f4
}

echo "==> building resil-server (-race) and resil"
go build -race -o "$WORK/resil-server" ./cmd/resil-server
go build -o "$WORK/resil" ./cmd/resil

echo "==> starting 3 nodes over peer table $PEERS"
"$WORK/resil-server" -addr ":$HTTP1" -binary-addr ":$BIN1" -node "$NODE1" -peers "$PEERS" \
  >"$WORK/node1.log" 2>&1 &
PID1=$!
"$WORK/resil-server" -addr ":$HTTP2" -binary-addr ":$BIN2" -node "$NODE2" -peers "$PEERS" \
  >"$WORK/node2.log" 2>&1 &
PID2=$!
"$WORK/resil-server" -addr ":$HTTP3" -binary-addr ":$BIN3" -node "$NODE3" -peers "$PEERS" \
  >"$WORK/node3.log" 2>&1 &
PID3=$!
wait_ready "$HTTP1"; wait_ready "$HTTP2"; wait_ready "$HTTP3"

echo "==> every node mints sessions it owns"
for port in "$HTTP1:$NODE1" "$HTTP2:$NODE2" "$HTTP3:$NODE3"; do
  http=${port%%:*}; self=${port#*:}
  http_status POST "http://localhost:$http/v1/sessions" '{"model":"quadratic"}'
  [ "$STATUS" = 201 ] || fail "create on :$http -> status $STATUS: $BODY"
  owner=$(json_field "$BODY" owner)
  [ "$owner" = "$self" ] || fail "node :$http minted owner $owner, want $self"
done

echo "==> cross-node forwarding with ownership annotations"
http_status POST "http://localhost:$HTTP1/v1/sessions" '{"model":"quadratic"}'
[ "$STATUS" = 201 ] || fail "create on node1: $STATUS"
SID=$(json_field "$BODY" id)
[ -n "$SID" ] || fail "no session id: $BODY"
http_status GET "http://localhost:$HTTP2/v1/sessions/$SID"
[ "$STATUS" = 200 ] || fail "forwarded get via node2: $STATUS: $BODY"
[ "$(json_field "$BODY" owner)" = "$NODE1" ] || fail "forwarded get owner: $BODY"
http_status POST "http://localhost:$HTTP3/v1/sessions/$SID/observe" \
  '{"values":[1,0.99,0.98,0.985]}'
[ "$STATUS" = 200 ] || fail "forwarded observe via node3: $STATUS: $BODY"
http_status GET "http://localhost:$HTTP1/v1/sessions/$SID"
echo "$BODY" | grep -q '"observations":4' || fail "forwarded observe lost: $BODY"

echo "==> misrouted SSE answers a typed redirect (421)"
http_status GET "http://localhost:$HTTP2/v1/sessions/$SID/events"
[ "$STATUS" = 421 ] || fail "remote SSE status $STATUS, want 421"
echo "$BODY" | grep -q '"redirect":true' || fail "SSE redirect envelope: $BODY"
echo "$BODY" | grep -q "\"owner\":\"$NODE1\"" || fail "SSE redirect owner: $BODY"

echo "==> loadgen SLO gate on the binary transport (same gates as HTTP)"
"$WORK/resil" loadgen -server "http://localhost:$HTTP2" \
  -transport binary -binary-server "$NODE2" \
  -duration 3s -concurrency 2 -slo-p99 2s -slo-error-rate 0 \
  >"$WORK/loadgen_binary.txt" || fail "binary loadgen breached SLO: $(cat "$WORK/loadgen_binary.txt")"
"$WORK/resil" loadgen -server "http://localhost:$HTTP2" \
  -duration 3s -concurrency 2 -slo-p99 2s -slo-error-rate 0 \
  >"$WORK/loadgen_http.txt" || fail "http loadgen breached SLO: $(cat "$WORK/loadgen_http.txt")"

echo "==> metrics lint with required cluster/transport families"
curl -fsS "http://localhost:$HTTP2/metrics" >"$WORK/metrics.txt"
REQUIRE_FAMILIES="resil_cluster_peers resil_cluster_forwards_total resil_cluster_forward_duration_seconds resil_cluster_redirects_total resil_transport_requests_total resil_transport_request_duration_seconds" \
  bash scripts/metrics_lint.sh "$WORK/metrics.txt" \
  || fail "metrics lint on node2 exposition"

echo "==> kill -9 node1"
kill -9 "$PID1"
wait "$PID1" 2>/dev/null || true
PID1=""

echo "==> requests for the dead node's sessions return typed redirects"
http_status GET "http://localhost:$HTTP2/v1/sessions/$SID"
[ "$STATUS" = 502 ] || fail "dead-owner get status $STATUS, want 502: $BODY"
echo "$BODY" | grep -q '"redirect":true' || fail "dead-owner redirect envelope: $BODY"
echo "$BODY" | grep -q "\"owner\":\"$NODE1\"" || fail "dead-owner redirect owner: $BODY"

echo "==> survivors keep serving their shards"
for http in "$HTTP2" "$HTTP3"; do
  http_status POST "http://localhost:$http/v1/sessions" '{"model":"quadratic"}'
  [ "$STATUS" = 201 ] || fail "survivor :$http create: $STATUS: $BODY"
  SURV=$(json_field "$BODY" id)
  http_status POST "http://localhost:$http/v1/sessions/$SURV/observe" '{"values":[1,0.99]}'
  [ "$STATUS" = 200 ] || fail "survivor :$http observe: $STATUS: $BODY"
done

echo "==> replaying the lost workload onto a survivor (resil stream, binary transport)"
"$WORK/resil" stream -server "$NODE2" -transport binary \
  -dataset 1990-93 -model quadratic >"$WORK/replay.txt" \
  || fail "stream replay onto survivor failed: $(tail -5 "$WORK/replay.txt")"
grep -q "session closed" "$WORK/replay.txt" || fail "replay never saw the terminal event"

echo "==> graceful SIGTERM drain of the survivors"
kill -TERM "$PID2" "$PID3"
wait "$PID2" || fail "node2 exited non-zero on SIGTERM"
wait "$PID3" || fail "node3 exited non-zero on SIGTERM"
PID2=""; PID3=""
for log in node2 node3; do
  grep -q 'draining' "$WORK/$log.log" || fail "$log never logged draining"
  if grep -q 'WARNING: DATA RACE' "$WORK/$log.log"; then
    fail "$log hit a data race (see $WORK/$log.log)"
  fi
done
if grep -q 'WARNING: DATA RACE' "$WORK/node1.log"; then
  fail "node1 hit a data race before the kill"
fi

echo "cluster_smoke: OK (3 nodes, forwarding, kill -9, typed redirects, replay recovery)"
