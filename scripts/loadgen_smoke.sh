#!/usr/bin/env bash
# Smoke-scale SLO gate: run the mixed fit/batch/stream load generator
# against a durable resil-server for a few seconds and fail if the
# error-rate or p99 budget is blown. Thresholds are generous — shared CI
# runners are noisy — so a failure here means something is actually
# wrong (a lock held across a fit, WAL stalls on the request path, a
# handler returning 500s under concurrency), not that the machine was
# slow.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${RESIL_SMOKE_PORT:-18124}"
BASE="http://localhost:${PORT}"
WORK="${RESIL_SMOKE_DIR:-$(mktemp -d)}"
DURATION="${LOADGEN_DURATION:-5s}"
CONCURRENCY="${LOADGEN_CONCURRENCY:-4}"
SLO_P99="${LOADGEN_SLO_P99:-2s}"
SLO_ERROR_RATE="${LOADGEN_SLO_ERROR_RATE:-0.01}"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> building resil-server and resil"
go build -o "$WORK/resil-server" ./cmd/resil-server
go build -o "$WORK/resil" ./cmd/resil

# Durable, interval-fsync: the WAL write path is on the request path, so
# the SLO gate covers durability overhead too.
echo "==> starting durable server on :$PORT"
"$WORK/resil-server" -addr ":$PORT" -data-dir "$WORK/data" -wal-sync interval \
  >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

echo "==> loadgen: $DURATION at concurrency $CONCURRENCY (p99 <= $SLO_P99, errors <= $SLO_ERROR_RATE)"
"$WORK/resil" loadgen -server "$BASE" \
  -duration "$DURATION" -concurrency "$CONCURRENCY" \
  -slo-p99 "$SLO_P99" -slo-error-rate "$SLO_ERROR_RATE"

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "loadgen_smoke: OK"
