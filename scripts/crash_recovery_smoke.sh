#!/usr/bin/env bash
# Black-box crash-recovery smoke test against the real resil-server
# binary: create a durable session, stream observations, kill -9 the
# server mid-flight, corrupt the WAL tail the way a crash landing
# mid-append would, restart, and assert the session comes back with its
# full history and keeps accepting observations. Complements the
# in-process chaos test (internal/durable TestCrashRecoveryKill9) by
# exercising the actual entry point: flag parsing, boot-time recovery,
# the /readyz replaying phase, and graceful-degradation logging.
#
# Requires only the Go toolchain and curl. Exits non-zero on any
# violated assertion.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${RESIL_SMOKE_PORT:-18123}"
BASE="http://localhost:${PORT}"
WORK="${RESIL_SMOKE_DIR:-$(mktemp -d)}"
DATA="$WORK/data"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "crash_recovery_smoke: FAIL: $*" >&2; exit 1; }

wait_ready() {
  for _ in $(seq 1 50); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  fail "server never became ready (see $WORK/server.log)"
}

echo "==> building resil-server"
go build -o "$WORK/resil-server" ./cmd/resil-server

echo "==> boot 1: durable server with per-record fsync"
"$WORK/resil-server" -addr ":$PORT" -data-dir "$DATA" -wal-sync always \
  >"$WORK/server.log" 2>&1 &
SERVER_PID=$!
wait_ready

echo "==> create a session and stream 12 observations"
SID=$(curl -fsS -X POST "$BASE/v1/sessions" \
  -H 'Content-Type: application/json' -d '{"model":"quadratic"}' \
  | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$SID" ] || fail "no session id in create response"
curl -fsS -X POST "$BASE/v1/sessions/$SID/observe" \
  -H 'Content-Type: application/json' \
  -d '{"values":[1,1,1,0.97,0.95,0.93,0.92,0.93,0.95,0.97,0.99,1.0]}' \
  >/dev/null

echo "==> kill -9 (no shutdown hooks, no final snapshot)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "==> tear the WAL tail (crash mid-append)"
printf '\x42\x00\x00\x00\xff' >> "$DATA/wal.log"

echo "==> boot 2: recovery replay"
"$WORK/resil-server" -addr ":$PORT" -data-dir "$DATA" -wal-sync always \
  >"$WORK/server2.log" 2>&1 &
SERVER_PID=$!
wait_ready

SNAP=$(curl -fsS "$BASE/v1/sessions/$SID") \
  || fail "session $SID did not survive the crash"
echo "$SNAP" | grep -q '"observations":12' \
  || fail "history lost: $SNAP"

echo "==> recovered session keeps observing"
SEQ=$(curl -fsS -X POST "$BASE/v1/sessions/$SID/observe" \
  -H 'Content-Type: application/json' -d '{"values":[1.0]}' \
  | grep -o '"seq":[0-9]*' | head -1 | cut -d: -f2)
[ "$SEQ" = "13" ] || fail "post-recovery observation got seq ${SEQ:-none}, want 13"

grep -q 'torn' "$WORK/server2.log" \
  || fail "recovery log never mentioned the torn tail"
grep -q 'sessions recovered' "$WORK/server2.log" \
  || fail "recovery log missing 'sessions recovered'"

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "crash_recovery_smoke: OK (session $SID survived kill -9 with a torn WAL tail)"
