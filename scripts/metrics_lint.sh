#!/usr/bin/env bash
# Lint a Prometheus/OpenMetrics exposition (from a file argument or
# stdin) against this repo's conventions. This is the contract that
# keeps dashboards from silently rotting: every family is resil_-
# prefixed and documented, counters are _total, and exemplars — the
# " # {trace_id=...}" suffixes that make histogram buckets clickable —
# are syntactically valid and only where OpenMetrics allows them
# (bucket lines). Fails with a line-numbered complaint on the first
# category of violation found.
set -euo pipefail

INPUT="${1:-/dev/stdin}"
EXPO="$(mktemp)"
trap 'rm -f "$EXPO"' EXIT
cat "$INPUT" > "$EXPO"

if ! [ -s "$EXPO" ]; then
  echo "metrics_lint: empty exposition" >&2
  exit 1
fi

fail=0
complain() {
  echo "metrics_lint: $*" >&2
  fail=1
}

# --- Structural pass: every line is a comment, blank, or a sample ----
# Sample grammar (one line):
#   name{labels} value [timestamp] [# {trace_id="32hex"} value timestamp]
# We keep the regex permissive about label contents (values may hold
# almost anything between quotes) and strict about the exemplar tail.
NAME='[a-zA-Z_:][a-zA-Z0-9_:]*'
# Label values are quoted and may themselves contain braces (route
# patterns like "/v1/sessions/{id}"), so the body is a sequence of
# quoted strings and non-brace filler rather than a naive [^}]*.
LABELS='(\{([^"{}]|"[^"]*")*\})?'
NUM='-?[0-9.eE+-]+|NaN|[+-]?Inf'
EXEMPLAR='( # \{trace_id="[0-9a-f]{32}"\} ('"$NUM"')( [0-9.]+)?)?'
SAMPLE="^${NAME}${LABELS} (${NUM})( [0-9]+)?${EXEMPLAR}\$"

bad=$(grep -vE "^#|^$" "$EXPO" | grep -nEv "$SAMPLE" || true)
if [ -n "$bad" ]; then
  complain "unparseable sample lines:"$'\n'"$bad"
fi

# --- Naming pass: families are resil_-prefixed, counters are _total --
# Family names come from TYPE comments, which also gives us the
# per-family kind for the checks below.
TYPES=$(grep -E '^# TYPE ' "$EXPO" | awk '{print $3, $4}')
if [ -z "$TYPES" ]; then
  complain "no # TYPE comments found"
fi

while read -r family kind; do
  [ -n "$family" ] || continue
  case "$family" in
    resil_*) ;;
    *) complain "family $family missing resil_ prefix" ;;
  esac
  if ! grep -qE "^# HELP $family " "$EXPO"; then
    complain "family $family has # TYPE but no # HELP"
  fi
  case "$kind" in
    counter)
      case "$family" in
        *_total) ;;
        *) complain "counter $family must end in _total" ;;
      esac
      ;;
    histogram)
      grep -qE "^${family}_bucket\{" "$EXPO" || complain "histogram $family has no _bucket samples"
      grep -qE "^${family}_sum" "$EXPO"     || complain "histogram $family has no _sum sample"
      grep -qE "^${family}_count" "$EXPO"   || complain "histogram $family has no _count sample"
      grep -qE "^${family}_bucket\{[^}]*le=\"\+Inf\"" "$EXPO" || complain "histogram $family missing +Inf bucket"
      ;;
    gauge) ;;
    *) complain "family $family has unknown type $kind" ;;
  esac
done <<< "$TYPES"

# Every sample must belong to a declared family (histogram samples match
# via their _bucket/_sum/_count suffixes).
while read -r name; do
  base="$name"
  case "$name" in
    *_bucket) base="${name%_bucket}" ;;
    *_sum)    base="${name%_sum}" ;;
    *_count)  base="${name%_count}" ;;
  esac
  if ! grep -qE "^# TYPE ($name|$base) " "$EXPO"; then
    complain "sample $name has no # TYPE declaration"
  fi
done < <(grep -vE "^#|^$" "$EXPO" | sed -E 's/[{ ].*//' | sort -u)

# --- Required-family pass (opt-in) ----------------------------------
# REQUIRE_FAMILIES lists space-separated family names that must be
# declared in the exposition. The cluster smoke uses it to pin the
# resil_cluster_*/resil_transport_* families, which only appear once
# clustering and the binary listener are exercised.
if [ -n "${REQUIRE_FAMILIES:-}" ]; then
  for family in $REQUIRE_FAMILIES; do
    if ! grep -qE "^# TYPE $family " "$EXPO"; then
      complain "required family $family not declared in exposition"
    fi
  done
fi

# --- Exemplar pass: only on bucket lines ----------------------------
bad=$(grep -nE ' # \{' "$EXPO" | grep -vE '^[0-9]+:[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{' || true)
if [ -n "$bad" ]; then
  complain "exemplars outside histogram bucket lines:"$'\n'"$bad"
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi

samples=$(grep -cvE "^#|^$" "$EXPO")
exemplars=$(grep -cE ' # \{trace_id=' "$EXPO" || true)
echo "metrics_lint: ok ($samples samples, $exemplars exemplars)"
