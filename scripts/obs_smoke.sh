#!/usr/bin/env bash
# Observability smoke: boot a durable server with an SLO configured,
# push mixed traffic through it, and assert the tracing/metrics surface
# actually works end to end — traces are retained and queryable with
# intact span trees, /metrics parses under scripts/metrics_lint.sh
# including at least one histogram exemplar, and /v1/stats reports the
# SLO window. This is the black-box counterpart to the unit tests in
# internal/telemetry and internal/server: it would catch a middleware
# ordering bug or a dead trace store that every in-process test misses.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${RESIL_OBS_PORT:-18125}"
BASE="http://localhost:${PORT}"
WORK="${RESIL_OBS_DIR:-$(mktemp -d)}"
DURATION="${LOADGEN_DURATION:-5s}"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> building resil-server and resil"
go build -o "$WORK/resil-server" ./cmd/resil-server
go build -o "$WORK/resil" ./cmd/resil

echo "==> starting durable server on :$PORT with -slo-p99 2 -slo-error-rate 0.01"
"$WORK/resil-server" -addr ":$PORT" -data-dir "$WORK/data" -wal-sync interval \
  -slo-p99 2 -slo-error-rate 0.01 \
  >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
  if curl -sf "$BASE/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "$BASE/readyz" >/dev/null || { echo "obs_smoke: server never became ready" >&2; cat "$WORK/server.log" >&2; exit 1; }

echo "==> loadgen: $DURATION of mixed traffic"
"$WORK/resil" loadgen -server "$BASE" -duration "$DURATION" -concurrency 4 \
  -json >"$WORK/loadgen.json"

echo "==> asserting /debug/traces is non-empty and span trees resolve"
count=$(curl -sf "$BASE/debug/traces?limit=5" | python3 -c 'import json,sys; print(json.load(sys.stdin)["count"])')
if [ "$count" -lt 1 ]; then
  echo "obs_smoke: /debug/traces returned no traces after loadgen" >&2
  exit 1
fi
tid=$(curl -sf "$BASE/debug/traces?limit=1" | python3 -c 'import json,sys; print(json.load(sys.stdin)["traces"][0]["trace_id"])')
spans=$(curl -sf "$BASE/debug/traces/$tid" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["spans"]))')
if [ "$spans" -lt 1 ]; then
  echo "obs_smoke: trace $tid has no spans" >&2
  exit 1
fi
echo "    $count traces retained; trace $tid has $spans root span(s)"

echo "==> asserting loadgen -json carried server trace IDs for its slowest requests"
python3 - "$WORK/loadgen.json" <<'EOF'
import json, re, sys
rep = json.load(open(sys.argv[1]))
slow = rep.get("slowest_requests") or []
if not slow:
    sys.exit("obs_smoke: loadgen report has no slowest_requests")
for s in slow:
    if not re.fullmatch(r"[0-9a-f]{32}", s.get("trace_id", "")):
        sys.exit(f"obs_smoke: bad trace_id in slowest_requests: {s!r}")
buckets = [op for op in rep["per_op"].values() if op.get("buckets")]
if not buckets:
    sys.exit("obs_smoke: loadgen report has no per-op histogram buckets")
print(f"    {len(slow)} slowest requests with trace IDs; buckets on {len(buckets)} ops")
EOF

echo "==> linting /metrics (conventions + exemplar syntax)"
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
bash scripts/metrics_lint.sh "$WORK/metrics.txt"

if ! grep -qE ' # \{trace_id="[0-9a-f]{32}"\}' "$WORK/metrics.txt"; then
  echo "obs_smoke: /metrics has no histogram exemplars after loadgen" >&2
  exit 1
fi

echo "==> asserting /v1/stats reports the SLO window and exemplars"
curl -sf "$BASE/v1/stats" >"$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
slo = st["slo"]
assert slo["enabled"], "slo not enabled despite -slo-p99"
assert slo["requests"] > 0, "slo window saw no requests"
assert st["traces"]["retained"] > 0, "stats reports no retained traces"
assert any(st["exemplars"].values()), "stats reports no exemplars"
assert "durable" in st, "stats missing durable family"
print("    slo window: %d reqs, p99 %.1fms, budget %.2f"
      % (slo["requests"], slo["p99_seconds"] * 1000, slo["budget_remaining"]))
EOF

echo "==> resil top -once renders against the live server"
"$WORK/resil" top -once -server "$BASE" >/dev/null

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "obs_smoke: OK"
