#!/usr/bin/env bash
# Scenario-engine smoke: the end-to-end gate for `resil simulate` and
# the Monte Carlo study pipeline.
#
#   1. Determinism: the same seed renders a byte-identical scenario set
#      twice in a row AND at GOMAXPROCS=1 vs 4 — the engine's replay
#      contract, checked on the real binary.
#   2. Study: an N-scenario coupled study (default 1000) runs through
#      the service Batch() pool and must emit non-empty CI-coverage and
#      win-rate-by-shape-class tables, and reproduce exactly on a
#      second run with the same seed.
#   3. API + telemetry: POST /v1/simulate on a live server answers with
#      scenarios, and the /metrics exposition passes metrics_lint with
#      the resil_scenario_* families present.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${RESIL_SMOKE_PORT:-18127}"
BASE="http://localhost:${PORT}"
WORK="${RESIL_SMOKE_DIR:-$(mktemp -d)}"
SCENARIOS="${SIM_SCENARIOS:-1000}"
MODELS="${SIM_MODELS:-quadratic,competing-risks}"
SEED="${SIM_SEED:-7}"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> building resil and resil-server"
go build -o "$WORK/resil" ./cmd/resil
go build -o "$WORK/resil-server" ./cmd/resil-server

echo "==> determinism: same seed twice, and GOMAXPROCS 1 vs 4"
"$WORK/resil" simulate -preset triad -n 16 -seed "$SEED" -format csv -o "$WORK/set_a.csv" 2>/dev/null
"$WORK/resil" simulate -preset triad -n 16 -seed "$SEED" -format csv -o "$WORK/set_b.csv" 2>/dev/null
cmp "$WORK/set_a.csv" "$WORK/set_b.csv" || { echo "sim_smoke: FAIL same-seed reruns differ" >&2; exit 1; }
GOMAXPROCS=1 "$WORK/resil" simulate -preset triad -n 16 -seed "$SEED" -format csv -o "$WORK/set_p1.csv" 2>/dev/null
GOMAXPROCS=4 "$WORK/resil" simulate -preset triad -n 16 -seed "$SEED" -format csv -o "$WORK/set_p4.csv" 2>/dev/null
cmp "$WORK/set_p1.csv" "$WORK/set_p4.csv" || { echo "sim_smoke: FAIL GOMAXPROCS 1 vs 4 differ" >&2; exit 1; }
cmp "$WORK/set_a.csv" "$WORK/set_p1.csv" || { echo "sim_smoke: FAIL parallel vs baseline differ" >&2; exit 1; }
[ "$(wc -l < "$WORK/set_a.csv")" -gt 1 ] || { echo "sim_smoke: FAIL empty scenario set" >&2; exit 1; }
echo "    byte-identical across reruns and core counts"

echo "==> Monte Carlo study: $SCENARIOS scenarios through Batch() ($MODELS)"
"$WORK/resil" simulate -study -preset pair -n "$SCENARIOS" -seed "$SEED" -models "$MODELS" \
  > "$WORK/study_a.txt"
grep -q "Empirical CI coverage by shape class" "$WORK/study_a.txt" \
  || { echo "sim_smoke: FAIL no coverage table" >&2; cat "$WORK/study_a.txt" >&2; exit 1; }
grep -q "Model-selection win rate by shape class" "$WORK/study_a.txt" \
  || { echo "sim_smoke: FAIL no win-rate table" >&2; exit 1; }
# Non-empty means actual class rows under the headers: at least one
# line starting with a letter-shape tag and a percentage on it.
grep -Eq '^[VUWL][^ ]* +[0-9]+ .*%' "$WORK/study_a.txt" \
  || { echo "sim_smoke: FAIL tables have no class rows" >&2; cat "$WORK/study_a.txt" >&2; exit 1; }

echo "==> study determinism: same seed reproduces the same tables"
"$WORK/resil" simulate -study -preset pair -n "$SCENARIOS" -seed "$SEED" -models "$MODELS" \
  > "$WORK/study_b.txt"
cmp "$WORK/study_a.txt" "$WORK/study_b.txt" || { echo "sim_smoke: FAIL study reruns differ" >&2; exit 1; }

echo "==> live server: POST /v1/simulate + scenario telemetry"
"$WORK/resil-server" -addr ":$PORT" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

curl -fsS -X POST "$BASE/v1/simulate" \
  -H 'Content-Type: application/json' \
  -d "{\"preset\":\"pair\",\"count\":4,\"seed\":$SEED}" > "$WORK/simulate.json"
grep -q '"scenarios"' "$WORK/simulate.json" || { echo "sim_smoke: FAIL /v1/simulate reply has no scenarios" >&2; exit 1; }
grep -q '"classes"' "$WORK/simulate.json" || { echo "sim_smoke: FAIL /v1/simulate reply has no classes" >&2; exit 1; }

curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
REQUIRE_FAMILIES="resil_scenario_generated_total resil_scenario_shocks_total resil_scenario_generation_duration_seconds" \
  bash scripts/metrics_lint.sh "$WORK/metrics.txt"

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "sim_smoke: OK ($SCENARIOS scenarios, seed $SEED)"
