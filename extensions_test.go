package resilience_test

import (
	"math"
	"testing"

	"resilience"
)

func TestFacadeExtensionsEndToEnd(t *testing.T) {
	data := recessionLike(t)

	// Fit + bootstrap.
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := resilience.Bootstrap(fit, resilience.BootstrapConfig{Replicates: 30})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Succeeded < 15 || len(bs.ParamLower) != 3 {
		t.Errorf("bootstrap: %d succeeded, %d params", bs.Succeeded, len(bs.ParamLower))
	}

	// Forecasting.
	fc, err := resilience.ForecastHorizon(fit, 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Mean) != 6 || fc.Lower[0] >= fc.Upper[0] {
		t.Errorf("forecast: %+v", fc)
	}
	if _, err := resilience.ForecastAt(fit, []float64{50, 55}, 0.05); err != nil {
		t.Errorf("ForecastAt: %v", err)
	}

	// Model selection across the paper models plus the exp-bathtub
	// extension.
	sel, err := resilience.SelectModel(
		[]resilience.Model{resilience.Quadratic(), resilience.CompetingRisks(), resilience.ExpBathtub()},
		data, resilience.SelectConfig{Criterion: resilience.ByBIC})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Scores) != 3 || sel.Best().Model == nil {
		t.Errorf("selection: %d scores", len(sel.Scores))
	}
	if _, err := resilience.RollingOriginCV(resilience.Quadratic(), data, 40, resilience.FitConfig{}); err != nil {
		t.Errorf("RollingOriginCV: %v", err)
	}

	// Point metrics.
	pm, err := resilience.FitPointMetrics(fit, 0, 47, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Robustness <= 0 || pm.Robustness > 1 {
		t.Errorf("robustness = %g", pm.Robustness)
	}
	w := resilience.Window{TH: 0, TR: 47, TD: 18, T0: 0, Nominal: 1, PMin: 0.97}
	if _, err := resilience.ComputePointMetrics(fit.Eval, w); err != nil {
		t.Errorf("ComputePointMetrics: %v", err)
	}

	// Scenario analysis: doubling recovery speed from month 10.
	impact, err := resilience.EvaluateIntervention(fit,
		resilience.Intervention{Start: 10, Accel: 2}, 0.995, 47)
	if err != nil {
		t.Fatal(err)
	}
	if impact.Intervened[resilience.PerformancePreserved] < impact.Baseline[resilience.PerformancePreserved] {
		t.Error("intervention should not reduce preserved performance")
	}

	// Robust fitting.
	robust, err := resilience.FitRobust(resilience.CompetingRisks(), data, resilience.RobustConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if robust.SSE < 0 || math.IsNaN(robust.SSE) {
		t.Errorf("robust SSE = %g", robust.SSE)
	}
}

func TestFacadeCompositeAndTracker(t *testing.T) {
	// Composite model through the facade.
	comp, err := resilience.NewComposite(resilience.CompetingRisks(), resilience.CompetingRisks(), 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumParams() != 7 {
		t.Errorf("composite params = %d", comp.NumParams())
	}

	// Extra CDF families compose into mixtures.
	for _, f := range []resilience.CDFFamily{resilience.LogLogisticCDF(), resilience.GompertzCDF()} {
		mix, err := resilience.NewMixture(resilience.Weibull(), f, resilience.LogTrend())
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if mix.Eval(mix.Guess(nil), 0) != 1 {
			t.Errorf("%s mixture Eval(0) != 1", f.Name())
		}
	}

	// Online tracker through the facade.
	tracker := resilience.NewTracker(resilience.TrackerConfig{})
	data := recessionLike(t)
	var lastPhase resilience.Phase
	for i := 0; i < data.Len(); i++ {
		up, err := tracker.Observe(data.Time(i), data.Value(i))
		if err != nil {
			t.Fatal(err)
		}
		lastPhase = up.Phase
	}
	if lastPhase != resilience.PhaseRecovered {
		t.Errorf("final phase = %v", lastPhase)
	}
	if tracker.Phase() != resilience.PhaseRecovered {
		t.Errorf("tracker phase = %v", tracker.Phase())
	}
}

func TestFacadeTrendsAndExpBathtub(t *testing.T) {
	// Every exported trend constructor yields a usable mixture.
	for _, trend := range []resilience.Trend{
		resilience.LogTrend(), resilience.LinearTrend(),
		resilience.ConstTrend(), resilience.ExpTrend(),
	} {
		mix, err := resilience.NewMixture(resilience.Exp(), resilience.Weibull(), trend)
		if err != nil {
			t.Fatalf("%s: %v", trend.Name(), err)
		}
		if err := mix.Validate(mix.Guess(nil)); err != nil {
			t.Errorf("%s: guess invalid: %v", trend.Name(), err)
		}
	}
	// The exp-bathtub fits through the facade.
	data := recessionLike(t)
	fit, err := resilience.Fit(resilience.ExpBathtub(), data, resilience.FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE < 0 {
		t.Errorf("SSE = %g", fit.SSE)
	}
}

func TestFacadeKShape(t *testing.T) {
	n := 24
	mk := func(drop, end float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			x := float64(i)
			if x <= 2 {
				out[i] = 1 - drop*x/2
			} else {
				out[i] = (1 - drop) + (end-(1-drop))*(x-2)/float64(n-3)
			}
		}
		return out
	}
	if got := resilience.ClassifyShapePair(mk(0.1, 1.04), mk(0.25, 0.9)); got != resilience.ShapeK {
		t.Errorf("divergent sectors = %v, want K", got)
	}
}

func TestFacadeDiagnostics(t *testing.T) {
	data := recessionLike(t)
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := resilience.DiagnoseResiduals(fit)
	if err != nil {
		t.Fatal(err)
	}
	if diag.String() == "" {
		t.Error("empty diagnostics summary")
	}
	// The fixture is a sine-based curve fit by a 3-parameter bathtub, so
	// structured residuals are expected; just assert the tests computed.
	if diag.DurbinWatson <= 0 || diag.DurbinWatson >= 4 {
		t.Errorf("DW = %g", diag.DurbinWatson)
	}
}
