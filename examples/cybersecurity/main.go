// Cybersecurity models the cyber-resilience scenario of Sec. II: a DDoS
// attack degrades a service's request-handling capacity; mitigation and
// autoscaling restore it, eventually above the pre-attack baseline
// (computational systems can reach improved performance). A mixture
// model with a Weibull degradation process and exponential recovery is
// fit to the first hours of telemetry to forecast the rest of the
// incident.
//
// Run with:
//
//	go run ./examples/cybersecurity
package main

import (
	"fmt"
	"log"
	"math"

	"resilience"
)

func main() {
	// Normalized serving capacity sampled every 10 minutes for 8 hours
	// (49 points). The attack ramps over ~90 minutes; mitigation engages
	// after the first hour and overshoots baseline via autoscaling.
	observed := capacityTrace(49)
	times := make([]float64, len(observed))
	for i := range times {
		times[i] = float64(i) / 6 // hours
	}
	data, err := resilience.NewSeries(times, observed)
	if err != nil {
		log.Fatal(err)
	}

	// Compare all four standard mixtures (enumerated from the model
	// catalog) plus a custom Gamma-LogNormal variant; pick the best by
	// PMSE on a held-out tail.
	models := []resilience.Model{}
	for _, info := range resilience.ModelsByFamily(resilience.FamilyMixture) {
		models = append(models, info.Model)
	}
	custom, err := resilience.NewMixture(resilience.GammaCDF(), resilience.LogNormalCDF(), resilience.LogTrend())
	if err != nil {
		log.Fatal(err)
	}
	models = append(models, custom)

	var (
		best     *resilience.Validation
		bestName string
	)
	fmt.Println("model               PMSE          r2adj")
	fmt.Println("------------------------------------------")
	for _, m := range models {
		v, err := resilience.Validate(m, data, resilience.ValidateConfig{TrainFraction: 0.8})
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		fmt.Printf("%-18s  %.9f  %+.5f\n", m.Name(), v.GoF.PMSE, v.GoF.R2Adj)
		if best == nil || v.GoF.PMSE < best.GoF.PMSE {
			best, bestName = v, m.Name()
		}
	}
	fmt.Printf("\nbest forecaster: %s\n", bestName)

	// Incident timeline predictions from the winning fit.
	td, err := resilience.ModelMinimum(best.Fit, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst degradation: %.0f%% capacity at %.1f h\n", 100*best.Fit.Eval(td), td)
	tr, err := resilience.RecoveryTime(best.Fit, 1.0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted return to full capacity: %.1f h after attack onset\n", tr)

	// Mission impact: average capacity preserved during the attack
	// window, the cyber-resilience measure the paper cites.
	w := resilience.Window{TH: 0, TR: 8, TD: td, T0: 0, Nominal: 1, PMin: best.Fit.Eval(td)}
	set, err := resilience.PredictedMetrics(best.Fit, w, resilience.MetricsConfig{Mode: resilience.Continuous})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average capacity preserved over the incident: %.1f%%\n",
		100*set[resilience.AvgPreserved])
	fmt.Printf("normalized capacity lost: %.2f%%\n",
		100*set[resilience.NormalizedAvgLost])
}

// capacityTrace synthesizes the incident telemetry: Weibull-shaped
// capacity loss to ~55% at 1.5 h, then exponential-like mitigation that
// settles ~6% above baseline once autoscaling spreads the load.
func capacityTrace(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		h := float64(i) / 6
		attack := 0.45 * (1 - math.Exp(-math.Pow(h/1.0, 2.2)))
		var mitigation float64
		if h > 1 {
			mitigation = 0.51 * (1 - math.Exp(-(h-1)/1.8))
		}
		v := 1 - attack + mitigation
		v += 0.006 * math.Sin(7*h) // load-balancer telemetry jitter
		out[i] = v
	}
	out[0] = 1
	return out
}
