// Recession reproduces the paper's full Sec. V pipeline on the 1990-93
// U.S. recession dataset: fit both bathtub models and all four standard
// mixtures on the first 90% of the data, score them with SSE, PMSE,
// adjusted R², and empirical coverage, and predict the eight
// interval-based resilience metrics for the held-out months.
//
// Run with:
//
//	go run ./examples/recession
package main

import (
	"fmt"
	"log"

	"resilience"
	"resilience/internal/dataset"
)

func main() {
	rec, err := dataset.ByName("1990-93")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d monthly observations, trough %.4f\n\n",
		rec.Name, rec.Series.Len(), troughOf(rec))

	models := []resilience.Model{
		resilience.Quadratic(),
		resilience.CompetingRisks(),
	}
	for _, info := range resilience.ModelsByFamily(resilience.FamilyMixture) {
		models = append(models, info.Model)
	}

	fmt.Println("model               SSE         PMSE        r2adj     EC")
	fmt.Println("-----------------------------------------------------------")
	best := models[0]
	bestPMSE := -1.0
	for _, m := range models {
		v, err := resilience.Validate(m, rec.Series, resilience.ValidateConfig{})
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		fmt.Printf("%-18s  %.8f  %.8f  %+.5f  %.2f%%\n",
			m.Name(), v.GoF.SSE, v.GoF.PMSE, v.GoF.R2Adj, 100*v.EC)
		if bestPMSE < 0 || v.GoF.PMSE < bestPMSE {
			best, bestPMSE = m, v.GoF.PMSE
		}
	}

	fmt.Printf("\nbest predictive model: %s\n\n", best.Name())

	// Interval-based resilience metrics for the best model.
	v, err := resilience.Validate(best, rec.Series, resilience.ValidateConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := resilience.CompareMetrics(v, rec.Series, resilience.MetricsConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("metric                                        actual      predicted   rel.err")
	fmt.Println("------------------------------------------------------------------------------")
	for _, r := range rows {
		fmt.Printf("%-44s  %10.6f  %10.6f  %.6f\n", r.Kind, r.Actual, r.Predicted, r.RelErr)
	}

	// Recovery prediction from the fitted curve.
	tr, err := resilience.RecoveryTime(v.Fit, 1.0, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted month when payrolls regain the pre-recession peak: %.1f\n", tr)
}

func troughOf(rec dataset.Recession) float64 {
	_, _, minV := rec.Series.Min()
	return minV
}
