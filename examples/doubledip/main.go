// Doubledip demonstrates the library's extensions for the paper's two
// "difficult letters". W-shaped events — two successive
// degradation/recovery cycles, like the 1980 + 1981-82 recessions —
// defeat every proposed single-dip model; a changepoint composite of two
// bathtub curves restores the fit, and residual-bootstrap intervals
// quantify how certain the fitted changepoint is. K-shaped events hide
// divergent sector recoveries inside one aggregate; decomposing and
// fitting per sector makes them predictable too.
//
// Run with:
//
//	go run ./examples/doubledip
package main

import (
	"fmt"
	"log"

	"resilience"
	"resilience/internal/dataset"
)

func main() {
	rec, err := dataset.ByName("1980")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s (%s-shaped): %d months\n\n", rec.Name, rec.Shape, rec.Months)

	// Single-dip baselines: exactly the models the paper proposes.
	fmt.Println("model                                        r2adj      PMSE")
	fmt.Println("----------------------------------------------------------------")
	singles := []resilience.Model{
		resilience.Quadratic(),
		resilience.CompetingRisks(),
		resilience.ExpBathtub(),
	}
	for _, m := range singles {
		v, err := resilience.Validate(m, rec.Series, resilience.ValidateConfig{})
		if err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		fmt.Printf("%-44s %+.5f  %.8f\n", m.Name(), v.GoF.R2Adj, v.GoF.PMSE)
	}

	// The extension: chain two competing-risks curves at a fitted
	// changepoint constrained between the documented dips.
	composite, err := resilience.NewComposite(
		resilience.CompetingRisks(), resilience.CompetingRisks(), 8, 22)
	if err != nil {
		log.Fatal(err)
	}
	v, err := resilience.Validate(composite, rec.Series, resilience.ValidateConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-44s %+.5f  %.8f\n\n", composite.Name(), v.GoF.R2Adj, v.GoF.PMSE)

	tau := v.Fit.Params[0]
	fmt.Printf("fitted changepoint: month %.1f (second recession onset)\n", tau)

	// How certain is the changepoint? Bootstrap the residuals.
	bs, err := resilience.Bootstrap(v.Fit, resilience.BootstrapConfig{Replicates: 80, Seed: 1980})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("changepoint 95%% bootstrap interval: [%.1f, %.1f] (%d/%d replicates)\n",
		bs.ParamLower[0], bs.ParamUpper[0], bs.Succeeded, bs.Requested)

	// Letter-shape classification confirms what the fit found.
	fmt.Printf("\nshape classifier says: %s\n", resilience.ClassifyShape(rec.Series.Values()))

	// K-shapes are the other "difficult letter" (Sec. V): the aggregate
	// hides two sectors whose recoveries diverge. Decompose and fit each
	// sector separately.
	recovering, depressed, err := dataset.KShapedPair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nK-shaped pair (2020-21 sector decomposition): classified %s\n",
		resilience.ClassifyShapePair(recovering.Values(), depressed.Values()))
	for name, series := range map[string]*resilience.Series{
		"remote-friendly sector": recovering,
		"in-person sector":       depressed,
	} {
		fit, err := resilience.Fit(resilience.CompetingRisks(), series, resilience.FitConfig{})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if tr, err := resilience.RecoveryTime(fit, 1.0, 120); err == nil && tr < 120 {
			fmt.Printf("  %-22s predicted full recovery at month %.0f\n", name, tr)
		} else {
			fmt.Printf("  %-22s no full recovery predicted within 10 years\n", name)
		}
	}
}
