// Monitoring replays the COVID-era employment collapse through the
// online tracker, showing the workflow the paper's introduction
// motivates: an analyst watching the incident unfold gets a recovery
// estimate that sharpens month by month, long before the recovery
// actually completes.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math"

	"resilience"
	"resilience/internal/dataset"
)

func main() {
	rec, err := dataset.ByName("2020-21")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %s month by month through the online tracker\n\n", rec.Name)

	tracker := resilience.NewTracker(resilience.TrackerConfig{
		// The 2020 collapse never regains the exact peak in-window;
		// consider 98.5%% of baseline "recovered" for operational purposes.
		RecoverySlack: 0.015,
	})

	fmt.Println("month  index    phase        predicted minimum       predicted recovery")
	fmt.Println("---------------------------------------------------------------------------")
	s := rec.Series
	for i := 0; i < s.Len(); i++ {
		up, err := tracker.Observe(s.Time(i), s.Value(i))
		if err != nil {
			log.Fatal(err)
		}
		minCol, recCol := "-", "-"
		if !math.IsNaN(up.PredictedMinimumTime) {
			minCol = fmt.Sprintf("%.3f @ month %.1f", up.PredictedMinimumValue, up.PredictedMinimumTime)
		}
		if !math.IsNaN(up.PredictedRecoveryTime) {
			recCol = fmt.Sprintf("month %.1f", up.PredictedRecoveryTime)
		}
		fmt.Printf("%5.0f  %.4f  %-11s  %-22s  %s\n",
			up.Time, up.Value, up.Phase, minCol, recCol)
	}

	fmt.Printf("\nfinal phase: %s after %d observations\n",
		tracker.Phase(), len(tracker.History()))
}
