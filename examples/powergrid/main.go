// Powergrid models the infrastructure scenario from the paper's
// introduction: a hurricane knocks out part of a regional power grid and
// an emergency-management team must predict, mid-restoration, when
// service will be back to nominal. Physical systems recover at most to
// nominal (never "improved"), so the example also shows how to cap the
// recovery level when interpreting predictions.
//
// Run with:
//
//	go run ./examples/powergrid
package main

import (
	"fmt"
	"log"
	"math"

	"resilience"
)

func main() {
	// Fraction of customers with service, sampled every 6 hours after
	// landfall. The hurricane takes the grid to 42% in the first day and
	// a half; crews then restore service along a decelerating curve.
	// Only the first 10 days (40 samples) have been observed — the team
	// wants the full-restoration time before it happens.
	observed := gridTrace(40)
	times := make([]float64, len(observed))
	for i := range times {
		times[i] = float64(i) * 0.25 // days
	}
	data, err := resilience.NewSeries(times, observed)
	if err != nil {
		log.Fatal(err)
	}

	// The competing-risks bathtub fits outage curves well: a fast
	// decreasing risk (storm damage saturates) competing with a linear
	// restoration effort.
	fit, err := resilience.Fit(resilience.CompetingRisks(), data, resilience.FitConfig{})
	if err != nil {
		log.Fatal(err)
	}
	gof := fmtGoF(fit, data)
	fmt.Printf("competing-risks fit over first %.1f days: %s\n", times[len(times)-1], gof)

	td, err := resilience.ModelMinimum(fit, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst outage: %.0f%% of customers served, %.1f days after landfall\n",
		100*fit.Eval(td), td)

	// Predict restoration milestones. A physical system cannot exceed
	// nominal service, so cap the query levels at 1.0.
	for _, level := range []float64{0.75, 0.90, 0.99} {
		tr, err := resilience.RecoveryTime(fit, level, 60)
		if err != nil {
			fmt.Printf("service will not reach %3.0f%% within the search horizon (%v)\n", level*100, err)
			continue
		}
		fmt.Printf("predicted %3.0f%% service: day %5.1f\n", level*100, tr)
	}

	// Resilience metrics over the observed window quantify how much
	// service the region retained through the event.
	w, err := resilience.PredictiveWindow(data, 30, fit)
	if err != nil {
		log.Fatal(err)
	}
	set, err := resilience.PredictedMetrics(fit, w, resilience.MetricsConfig{Mode: resilience.Continuous})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average service preserved over the prediction window: %.1f%%\n",
		100*set[resilience.AvgPreserved])
}

// gridTrace synthesizes the outage curve: smooth collapse to 42% over
// 1.5 days, then restoration that is fast at first and slows near
// completion (the crews' marginal effort rises as the remaining faults
// get harder).
func gridTrace(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		day := float64(i) * 0.25
		var v float64
		switch {
		case day <= 1.5:
			v = 1 - 0.58*(1-math.Exp(-2.5*day))/(1-math.Exp(-3.75))
		default:
			restored := 1 - math.Exp(-(day-1.5)/4.5)
			v = 0.42 + 0.58*restored
		}
		// Deterministic measurement wiggle from SCADA aggregation.
		v += 0.004 * math.Sin(9*day)
		out[i] = math.Min(v, 1)
	}
	out[0] = 1
	return out
}

func fmtGoF(fit *resilience.FitResult, data *resilience.Series) string {
	var sse float64
	for _, r := range fit.Residuals(data) {
		sse += r * r
	}
	return fmt.Sprintf("SSE %.6f over %d samples", sse, data.Len())
}
