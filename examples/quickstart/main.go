// Quickstart: fit both bathtub-shaped resilience models to a short
// performance series and predict when the system returns to its nominal
// level.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resilience"
)

func main() {
	// A system's normalized performance, sampled monthly from the moment
	// a disruption hits (t = 0 is the pre-disruption peak, value 1.0).
	observed := []float64{
		1.000, 0.992, 0.983, 0.975, 0.971, 0.969, 0.970, 0.974,
		0.979, 0.985, 0.990, 0.995, 0.999, 1.003, 1.006, 1.009,
	}
	data, err := resilience.SeriesFromValues(observed)
	if err != nil {
		log.Fatal(err)
	}

	for _, model := range []resilience.Model{
		resilience.Quadratic(),
		resilience.CompetingRisks(),
	} {
		fit, err := resilience.Fit(model, data, resilience.FitConfig{})
		if err != nil {
			log.Fatalf("fit %s: %v", model.Name(), err)
		}
		fmt.Printf("== %s\n", model.Name())
		fmt.Printf("   parameters: ")
		for i, name := range model.ParamNames() {
			fmt.Printf("%s=%.6g ", name, fit.Params[i])
		}
		fmt.Printf("\n   SSE: %.8f\n", fit.SSE)

		td, err := resilience.ModelMinimum(fit, 16)
		if err != nil {
			log.Fatalf("minimum: %v", err)
		}
		fmt.Printf("   minimum performance %.4f at t = %.2f\n", fit.Eval(td), td)

		tr, err := resilience.RecoveryTime(fit, 1.0, 48)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		fmt.Printf("   predicted recovery to 1.0 at t = %.2f\n\n", tr)
	}

	// The curve's letter shape, as economists would label it.
	fmt.Printf("curve shape: %s\n", resilience.ClassifyShape(observed))
}
